"""The Figure 8 reliability experiment over commodity internet.

§7: "The hardware configuration for this experiment consisted of a Linux
workstation with a 100 Mbs NIC transferring a 2 GB file repeatedly to a
similar workstation at Argonne National Laboratory in Chicago, via
commodity internet access. ... aggregate parallel bandwidth for a period
of approximately fourteen hours ... parallel (multiple TCP stream)
transfers using varying levels of parallelism, up to a maximum of eight
streams. ... Bandwidth between the two hosts reaches approximately
80 Mbs, somewhat lower than achieved in previous experiments, most
likely due to disk bandwidth limitations. [The graph] shows drops in
performance due to various network problems, including a power failure
for the SC network (SCinet), DNS problems, and backbone problems on the
exhibition floor. Because the GridFTP protocol supports restart of
failed transfers, the interrupted transfers continued as soon as the
network was restored. ... The frequent drop in bandwidth to relatively
low levels occurs because the GridFTP implementation used at SC'2000
destroys and rebuilds its TCP connections between consecutive
transfers."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.gridftp.client import GridFtpClient
from repro.gridftp.protocol import GridFtpConfig, GridFtpError
from repro.gridftp.server import GridFtpServer
from repro.gsi.auth import GsiContext, SecurityPolicy
from repro.gsi.credentials import CertificateAuthority, Identity, TrustAnchors
from repro.hosts.cpu import CpuModel
from repro.hosts.disk import DiskArray, DiskSpec
from repro.hosts.host import Host, HostSpec
from repro.net.dns import NameService
from repro.net.faults import FaultInjector, FaultSchedule
from repro.net.fluid import FluidNetwork
from repro.net.recorder import RateSeries, aggregate_series
from repro.net.topology import Topology
from repro.net.transport import Transport
from repro.net.units import GB, MB, mbps
from repro.netlogger.log import NetLogger
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem

HOURS = 3600.0


def default_fault_schedule() -> FaultSchedule:
    """The incident timeline of Figure 8 (hours into the run):

    - ~2.5 h: SCinet power failure (whole Dallas site dark, ~25 min);
    - ~6 h: DNS problems (~20 min);
    - ~9.5 h: backbone problems on the exhibition floor (the link limps
      at 15% for ~40 min).
    """
    return (FaultSchedule()
            .site_outage("dallas", start=2.5 * HOURS, duration=1500.0,
                         description="SCinet power failure")
            .dns_outage(start=6.0 * HOURS, duration=1200.0,
                        description="DNS problems")
            .degrade("commodity:fwd", start=9.5 * HOURS, duration=2400.0,
                     fraction=0.15,
                     description="backbone problems on the floor"))


def default_parallelism_schedule() -> List[Tuple[float, int]]:
    """(start_time, streams) steps: mostly modest parallelism, with the
    late-run increases the paper points out ("toward the right side of
    the graph, we see several temporary increases in aggregate
    bandwidth, due to increased levels of parallelism")."""
    return [(0.0, 2), (4.0 * HOURS, 4), (8.0 * HOURS, 2),
            (11.0 * HOURS, 8), (12.5 * HOURS, 4)]


@dataclass
class Figure8Result:
    """The Figure 8 data: a binned bandwidth timeline plus events."""

    bin_times: np.ndarray
    bin_rates: np.ndarray          # bytes/s per bin
    transfers_completed: int
    transfers_failed: int
    total_bytes: float
    restarts: int
    fault_log: List[tuple]
    series: List[RateSeries] = field(default_factory=list)

    @property
    def plateau_rate(self) -> float:
        """90th-percentile bin rate — the 'reaches approximately X'
        number (bytes/s)."""
        return float(np.percentile(self.bin_rates, 90))

    def outage_bins(self, threshold_fraction: float = 0.1) -> int:
        """Bins below ``threshold_fraction`` of the plateau."""
        return int(np.sum(self.bin_rates
                          < threshold_fraction * self.plateau_rate))

    def timeline_rows(self, every: int = 1) -> List[Tuple[float, float]]:
        """(hours, Mb/s) rows for printing the Figure 8 curve."""
        return [(float(t) / HOURS, float(r) * 8 / 1e6)
                for t, r in zip(self.bin_times[::every],
                                self.bin_rates[::every])]


class CommodityTestbed:
    """One Dallas workstation → one ANL workstation, commodity path.

    Parameters
    ----------
    seed:
        Random seed.
    disk_rate:
        Source/destination disk rate; the 10 MB/s default makes disk the
        bottleneck (~80 Mb/s), as the paper observed.
    one_way_latency:
        Dallas→Chicago commodity latency (~12 ms one-way).
    loss_rate:
        Background loss events per second per stream on the shared
        commodity path.
    """

    def __init__(self, seed: int = 0, disk_rate: float = 10 * 2**20,
                 one_way_latency: float = 0.012,
                 commodity_capacity: float = mbps(155),
                 loss_rate: float = 0.05):
        self.env = Environment(seed=seed)
        env = self.env
        ws_spec = HostSpec(
            nic_rate=mbps(100), bus_rate=None,
            cpu=CpuModel(coalesce=8),
            disk=DiskArray(DiskSpec(rate=disk_rate), count=1))
        self.topology = Topology("commodity")
        self.src_host = Host(self.topology, "dallas-ws", site="dallas",
                             spec=ws_spec)
        self.dst_host = Host(self.topology, "anl-ws", site="anl",
                             spec=ws_spec)
        self.src_host.uplink("r-dallas")
        self.dst_host.uplink("r-anl")
        self.topology.duplex_link("r-dallas", "r-anl",
                                  commodity_capacity, one_way_latency,
                                  name="commodity")
        self.network = FluidNetwork(env, self.topology)
        self.dns = NameService(env)
        self.dns.register("dallas-ws.scinet", self.src_host.node)
        self.transport = Transport(env, self.network, self.dns)
        ca = CertificateAuthority("Globus CA")
        trust = TrustAnchors()
        trust.trust_ca(ca)
        self.gsi = GsiContext(trust, SecurityPolicy(crypto_time=0.15))
        user = Identity("/CN=anl-user", ca, trust)
        self.src_fs = FileSystem(env, "dallas-fs")
        self.src_fs.create("big-2gb.dat", 2 * GB)
        sid = Identity("/CN=gridftp/dallas-ws.scinet", ca, trust)
        self.server = GridFtpServer(env, self.src_host, self.src_fs,
                                    gsi=self.gsi,
                                    credential_chain=sid.chain,
                                    hostname="dallas-ws.scinet")
        self.registry = {"dallas-ws.scinet": self.server}
        self.loss_rate = loss_rate
        self.client = GridFtpClient(
            env, self.transport, self.registry,
            credential_chain=user.make_proxy(env.now))
        self.dst_fs = FileSystem(env, "anl-fs")
        self.injector = FaultInjector(env, self.network, self.dns)
        self.logger = NetLogger(env, host="anl-ws", prog="gridftp")


def run_figure8_schedule(testbed: CommodityTestbed,
                         duration: float = 14 * HOURS,
                         faults: Optional[FaultSchedule] = None,
                         parallelism: Optional[List[Tuple[float, int]]]
                         = None,
                         channel_caching: bool = False,
                         file_bytes: float = 2 * GB,
                         bin_seconds: float = 120.0) -> Figure8Result:
    """Repeat 2 GB transfers for ``duration`` seconds under faults.

    ``channel_caching=False`` reproduces the SC'2000 behaviour (teardown
    and re-authentication between consecutive transfers — the frequent
    dips); True reproduces the post-SC'2000 improvement.
    """
    env = testbed.env
    if faults is None:
        faults = default_fault_schedule()
    if parallelism is None:
        parallelism = default_parallelism_schedule()
    testbed.injector.install(faults)
    all_series: List[RateSeries] = []
    counts = {"done": 0, "failed": 0, "restarts": 0, "bytes": 0.0}

    def streams_at(t: float) -> int:
        current = parallelism[0][1]
        for start, n in parallelism:
            if t >= start:
                current = n
        return current

    def driver():
        copy = 0
        while env.now < duration:
            n = streams_at(env.now)
            cfg = GridFtpConfig(parallelism=n, buffer_bytes=1 * MB,
                                channel_caching=channel_caching,
                                stall_timeout=30.0, retry_backoff=10.0,
                                retry_limit=1000,
                                loss_rate=testbed.loss_rate)
            try:
                session = yield from testbed.client.connect(
                    testbed.dst_host, "dallas-ws.scinet", cfg)
            except GridFtpError:
                # DNS outage or dead path at connect time: retry soon.
                counts["failed"] += 1
                testbed.logger.event("transfer.connect_failed",
                                     t=env.now)
                yield env.timeout(30.0)
                continue
            copy += 1
            testbed.logger.event("transfer.start", copy=copy, streams=n)
            try:
                stats = yield from session.get(
                    "big-2gb.dat", testbed.dst_fs, testbed.dst_host,
                    dest_name=f"copy{copy}.dat", config=cfg, record=True)
            except GridFtpError:
                counts["failed"] += 1
                testbed.logger.event("transfer.failed", copy=copy)
                session.close()
                continue
            if not channel_caching:
                session.close()
                testbed.client.channel_cache.drain()
            all_series.extend(stats.series)
            counts["done"] += 1
            counts["restarts"] += stats.restarts
            counts["bytes"] += stats.transferred_bytes
            testbed.logger.event("transfer.end", copy=copy,
                                 bytes=f"{stats.transferred_bytes:.0f}",
                                 restarts=stats.restarts)

    p = env.process(driver())
    env.run(until=duration)
    # Bin the aggregate series over exactly [0, duration].
    agg = aggregate_series(all_series) if all_series else None
    edges = np.arange(0.0, duration + bin_seconds, bin_seconds)
    if agg is not None:
        cum = agg.cumulative_bytes(edges)
        rates = np.diff(cum) / np.diff(edges)
    else:  # pragma: no cover - nothing transferred
        rates = np.zeros(len(edges) - 1)
    return Figure8Result(
        bin_times=edges[:-1], bin_rates=rates,
        transfers_completed=counts["done"],
        transfers_failed=counts["failed"],
        total_bytes=counts["bytes"],
        restarts=counts["restarts"],
        fault_log=list(testbed.injector.log),
        series=all_series)
