"""The ESG-I multi-site testbed (Figure 1).

Sites and roles, as drawn in the architecture figure:

- **ANL** — GridFTP disk server; also runs the replica catalog and MDS
  (LDAP services lived at ANL in the prototype).
- **LBNL-PDSF** — HPSS tape archive behind an HRM, with a GridFTP
  server on its staging disk (GSI-pftpd in the figure).
- **LBNL-Clipper**, **NCAR**, **ISI**, **SDSC**, **LLNL** — GridFTP
  disk servers with replica subsets (LLNL also "runs" PCMDI/CDAT).
- **client** — the user's desktop: VCDAT, the request manager, and the
  destination disk cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.data.digest import content_digest
from repro.data.synth import ClimateModelRun, monthly_files
from repro.data.grids import GridSpec
from repro.gridftp.client import GridFtpClient
from repro.gridftp.protocol import GridFtpConfig
from repro.gridftp.restart import ReliabilityPolicy
from repro.gridftp.plugins import install_standard_plugins
from repro.gridftp.server import GridFtpServer
from repro.gsi.auth import GsiContext, SecurityPolicy
from repro.gsi.credentials import CertificateAuthority, Identity, TrustAnchors
from repro.hosts.cpu import CpuModel
from repro.hosts.disk import DiskArray, DiskSpec
from repro.hosts.host import Host, HostSpec
from repro.mds.service import MdsService
from repro.metadata.catalog import MetadataCatalog, VariableRecord
from repro.net.dns import NameService
from repro.net.fluid import FluidNetwork
from repro.net.topology import Topology
from repro.net.transport import Transport
from repro.net.units import gbps, mbps
from repro.netlogger.log import NetLogger
from repro.nws.service import NetworkWeatherService
from repro.obs import Observability
from repro.replica.catalog import ReplicaCatalog
from repro.replica.manager import ReplicaManager
from repro.rm.manager import RequestManager
from repro.rm.resilience import ResiliencePolicy
from repro.rm.scheduler import SchedulerConfig, TransferScheduler
from repro.sim.core import Environment
from repro.storage.filesystem import FileSystem
from repro.storage.hpss import MassStorageSystem
from repro.storage.hrm import HierarchicalResourceManager

_VARIABLE_RECORDS = (
    VariableRecord("tas", "K", "surface air temperature"),
    VariableRecord("pr", "mm/day", "precipitation"),
    VariableRecord("clt", "%", "total cloud fraction"),
)


@dataclass
class EsgSite:
    """One storage site in the testbed."""

    name: str
    hostname: str
    host: Host
    server: GridFtpServer
    fs: FileSystem
    hrm: Optional[HierarchicalResourceManager] = None


def fleet_config() -> GridFtpConfig:
    """GridFTP tuning for large simulated fleets.

    Single-stream transfers over cached channels, with coarse (and
    backed-off) monitor/watchdog cadences so each user contributes a
    near-constant number of kernel events per file rather than a steady
    polling load. Use with :meth:`EsgTestbed.add_fleet`.
    """
    return GridFtpConfig(parallelism=1, channel_caching=True,
                         progress_poll=5.0, progress_poll_max=60.0,
                         stall_poll=30.0, stall_timeout=120.0,
                         record_series=False)


# (site, wan latency to the backbone in s, wan capacity)
_SITES: List[Tuple[str, float, float]] = [
    ("anl", 0.012, mbps(622)),
    ("lbnl-pdsf", 0.020, mbps(622)),
    ("lbnl-clipper", 0.020, mbps(622)),
    ("ncar", 0.015, mbps(155)),
    ("isi", 0.022, mbps(155)),
    ("sdsc", 0.021, mbps(155)),
    ("llnl", 0.019, mbps(155)),
]


class EsgTestbed:
    """The full prototype stack on one simulated WAN.

    Parameters
    ----------
    seed:
        Random seed (probes, losses).
    years:
        Years of synthetic model output in the archive.
    grid:
        Resolution of the synthetic output (sets file sizes).
    nws_period:
        NWS probe period in seconds.
    with_tape:
        Whether LBNL-PDSF data is tape-resident behind the HRM.
    materialize:
        When True, files carry real SDBF bytes (analysis/visualization
        experiments); when False they are size-only (bulk transfer
        experiments at any scale without the RAM).
    replicated_catalog:
        Back the replica catalog with a primary + two read replicas
        (§6.2's "distribution and replication of the catalog"), with a
        30 s sync period.
    catalog_sites:
        When set, replace the single replica catalog with a
        :class:`~repro.replica.federation.FederatedReplicaCatalog`
        sharded across the first ``catalog_sites`` testbed sites
        (mutually exclusive with ``replicated_catalog``). Collections
        are consistent-hash-placed; lookups fan out and tolerate shard
        outages with partial answers.
    catalog_replication:
        Shards holding each collection in the federated catalog
        (home + ``catalog_replication - 1`` async replicas).
    catalog_sync_interval:
        Async replication period between federation shards, seconds
        (the bounded staleness window).
    catalog_cache_ttl:
        Client-side lookup cache TTL for the federated catalog, seconds
        (0 disables). Cached answers may be stale; the RM verifies on
        open and demotes entries that outlived their replica.
    file_size_override:
        Force every catalog file to this size in bytes (bulk transfer
        experiments; incompatible with ``materialize``).
    log_capacity:
        When set, bound the shared NetLogger to a ring buffer of this
        many records (long runs); default keeps everything.
    scheduler:
        A :class:`~repro.rm.scheduler.SchedulerConfig`; when set, one
        shared :class:`~repro.rm.scheduler.TransferScheduler` is built
        and handed to every request manager (the main client's and
        every :meth:`add_client` RM), so admission control and fair
        queueing span all tenants.
    max_server_connections:
        When set, every GridFTP server rejects connects beyond this
        many concurrent sessions with a 421 reply (visible
        backpressure for unscheduled stampedes).
    tape_policy:
        Tape scheduling policy at the PDSF library: ``"batch"``
        (cartridge grouping + SCAN + aging, the default) or ``"fifo"``
        (strict arrival order, the pre-pipeline baseline).
    hrm_prefetch:
        Whether the PDSF HRM prefetches hinted dataset siblings during
        idle drive time.
    tape_drives:
        Number of tape drives in the PDSF library (default 2).
    kernel_queue:
        Event-queue backend for the simulation kernel: ``"calendar"``
        (default) or ``"heap"`` (the differential-testing baseline).
    aggregation_threshold:
        Passed to :class:`~repro.net.fluid.FluidNetwork`: paths already
        carrying this many flows aggregate further same-path transfers
        into one fluid class. ``None`` (default) keeps every transfer
        exact.
    sdbf_chunks:
        When set (with ``materialize=True``), encode the archive's
        files in the chunked SDBF layout — dim name → chunk length, or
        one int for every dim — so ERET subsets decode only the
        touched chunks.
    derived_cache_bytes:
        Per-server derived-product cache budget (0 disables).
    eret_range_staging:
        Whether tape-resident ERET requests start once the needed byte
        prefix is staged (see :class:`~repro.gridftp.server.GridFtpServer`).
    """

    def __init__(self, seed: int = 0, years: int = 1,
                 grid: Optional[GridSpec] = None,
                 nws_period: float = 30.0, with_tape: bool = True,
                 materialize: bool = False,
                 replicated_catalog: bool = False,
                 catalog_sites: Optional[int] = None,
                 catalog_replication: int = 2,
                 catalog_sync_interval: float = 30.0,
                 catalog_cache_ttl: float = 0.0,
                 file_size_override: Optional[float] = None,
                 reliability: Optional[ReliabilityPolicy] = None,
                 config: Optional[GridFtpConfig] = None,
                 resilience: Optional["ResiliencePolicy"] = None,
                 log_capacity: Optional[int] = None,
                 scheduler: Optional["SchedulerConfig"] = None,
                 max_server_connections: Optional[int] = None,
                 tape_policy: str = "batch",
                 hrm_prefetch: bool = True,
                 tape_drives: int = 2,
                 kernel_queue: str = "calendar",
                 aggregation_threshold: Optional[int] = None,
                 sdbf_chunks=None,
                 derived_cache_bytes: float = 64 * 2**20,
                 eret_range_staging: bool = True):
        self.env = Environment(seed=seed, queue=kernel_queue)
        env = self.env
        self.grid = grid or GridSpec(nlat=32, nlon=64, months=12)
        self.topology = Topology("esg")
        self.network = FluidNetwork(
            env, self.topology,
            aggregation_threshold=aggregation_threshold)
        self.dns = NameService(env)
        self.transport = Transport(env, self.network, self.dns)
        self.logger = NetLogger(env, host="client", prog="esg",
                                capacity=log_capacity)
        # One observability bundle for the whole testbed: the shared ULM
        # log above plus a metrics registry and tracer (repro.obs).
        self.obs = Observability.create(env, logger=self.logger)
        # attached by start_timeseries() when windowed recording is on
        self.timeseries = None

        # -- security fabric
        ca = CertificateAuthority("DOE Science Grid CA")
        self.trust = TrustAnchors()
        self.trust.trust_ca(ca)
        self.gsi = GsiContext(self.trust, SecurityPolicy(crypto_time=0.02))
        self.user = Identity("/DC=org/DC=doegrids/CN=climate-user", ca,
                             self.trust)

        # -- backbone (ESnet-ish star) and sites
        server_spec = HostSpec(
            nic_rate=gbps(1), bus_rate=None, cpu=CpuModel(coalesce=8),
            disk=DiskArray(DiskSpec(rate=40 * 2**20), count=4))
        self.sites: Dict[str, EsgSite] = {}
        self.registry: Dict[str, GridFtpServer] = {}
        for name, latency, capacity in _SITES:
            router = f"r-{name}"
            self.topology.duplex_link(router, "backbone", capacity,
                                      latency, name=f"wan-{name}")
            host = Host(self.topology, f"{name}-gridftp", site=name,
                        spec=server_spec)
            host.uplink(router)
            hostname = f"gridftp.{name}.gov"
            self.dns.register(hostname, host.node)
            fs = FileSystem(env, f"{name}-fs")
            server_id = Identity(f"/CN=gridftp/{hostname}", ca, self.trust)
            hrm = None
            if name == "lbnl-pdsf" and with_tape:
                mss = MassStorageSystem(env, cache_capacity=400 * 2**30,
                                        drives=tape_drives,
                                        name="hpss-pdsf",
                                        tape_policy=tape_policy,
                                        obs=self.obs)
                hrm = HierarchicalResourceManager(env, mss, fs,
                                                  name="hrm-pdsf",
                                                  obs=self.obs,
                                                  prefetch=hrm_prefetch)
            server = GridFtpServer(env, host, fs, gsi=self.gsi,
                                   credential_chain=server_id.chain,
                                   hrm=hrm, hostname=hostname,
                                   obs=self.obs,
                                   max_connections=max_server_connections,
                                   derived_cache_bytes=derived_cache_bytes,
                                   eret_range_staging=eret_range_staging)
            install_standard_plugins(server)
            self.registry[hostname] = server
            self.sites[name] = EsgSite(name, hostname, host, server, fs,
                                       hrm)

        # -- client site (the user's desktop)
        client_spec = HostSpec(
            nic_rate=mbps(100), bus_rate=None, cpu=CpuModel(coalesce=4),
            disk=DiskArray(DiskSpec(rate=20 * 2**20), count=1))
        self.client_host = Host(self.topology, "client", site="client",
                                spec=client_spec)
        self.client_host.uplink("r-client")
        self.topology.duplex_link("r-client", "backbone", mbps(100),
                                  0.010, name="wan-client")
        self.client_fs = FileSystem(env, "client-fs")

        # -- grid services
        if replicated_catalog and catalog_sites is not None:
            raise ValueError("replicated_catalog and catalog_sites "
                             "conflict: pick one catalog architecture")
        self.federation = None
        if replicated_catalog:
            from repro.ldap.directory import DirectoryServer
            from repro.ldap.replicated import ReplicatedDirectory
            primary = DirectoryServer(env, "rc-esg-primary",
                                      base_latency=0.005)
            read_replicas = [
                DirectoryServer(env, f"rc-esg-replica{i}",
                                base_latency=0.002)
                for i in range(2)]
            self.catalog_directory = ReplicatedDirectory(
                env, primary, read_replicas, sync_interval=30.0)
            self.catalog_directory.start()
            self.replica_catalog = ReplicaCatalog(
                env, directory=self.catalog_directory, name="esg")
        elif catalog_sites is not None:
            from repro.replica.federation import FederatedReplicaCatalog
            if not 1 <= catalog_sites <= len(_SITES):
                raise ValueError(f"catalog_sites must be in "
                                 f"[1, {len(_SITES)}]")
            shard_sites = [name for name, _, _ in _SITES][:catalog_sites]
            self.federation = FederatedReplicaCatalog(
                env, shard_sites, name="esg",
                replication=catalog_replication,
                sync_interval=catalog_sync_interval,
                cache_ttl=catalog_cache_ttl, obs=self.obs)
            self.federation.start()
            self.catalog_directory = None
            self.replica_catalog = self.federation
        else:
            self.catalog_directory = None
            self.replica_catalog = ReplicaCatalog(env, name="esg")
        self.metadata_catalog = MetadataCatalog(env, name="pcmdi")
        self.mds = MdsService(env, name="esg")
        self.nws = NetworkWeatherService(env, self.network, mds=self.mds,
                                         rng=env.rng.stream("nws"),
                                         obs=self.obs)
        self.gridftp = GridFtpClient(
            env, self.transport, self.registry,
            credential_chain=self.user.make_proxy(env.now),
            config=config or GridFtpConfig(parallelism=4), obs=self.obs)
        self.replica_manager = ReplicaManager(env, self.replica_catalog,
                                              self.gridftp)
        # Shared across every tenant RM so admission control is global.
        self.scheduler = (TransferScheduler(env, scheduler, obs=self.obs)
                          if scheduler is not None else None)
        self.request_manager = RequestManager(
            env, self.replica_catalog, self.mds, self.gridftp,
            self.registry, self.client_host, self.client_fs,
            reliability=reliability, nws=self.nws, logger=self.logger,
            config=config or GridFtpConfig(parallelism=4),
            resilience=resilience, obs=self.obs,
            scheduler=self.scheduler, tenant="client")

        # -- the user's analysis tool
        from repro.cdat.client import CdatClient
        from repro.rm.rpc import CorbaChannel
        self.cdat = CdatClient(env, self.metadata_catalog,
                               self.request_manager, self.client_fs,
                               rpc=CorbaChannel(env))
        # -- the ESG-II lightweight client (server-side processing only)
        from repro.cdat.portal import PortalClient
        self.portal = PortalClient(env, self.metadata_catalog,
                                   self.replica_catalog, self.gridftp,
                                   self.client_host, self.registry,
                                   mds=self.mds)

        # -- content + monitoring
        if materialize and file_size_override is not None:
            raise ValueError("materialize and file_size_override conflict")
        if sdbf_chunks is not None and not materialize:
            raise ValueError("sdbf_chunks requires materialize=True")
        self.materialize = materialize
        self.sdbf_chunks = sdbf_chunks
        self.file_size_override = file_size_override
        self._populate(years)
        for site in self.sites.values():
            self.nws.monitor(site.host.node, self.client_host.node,
                             period=nws_period)

    # -- archive population ---------------------------------------------------
    def _populate(self, years: int) -> None:
        """Register the synthetic archive in both catalogs and place
        replicas: every dataset fully at LBNL (tape where enabled), with
        partial disk replicas spread over the other sites."""
        runs = [ClimateModelRun(model="NCAR_CSM", run="run1",
                                grid=self.grid),
                ClimateModelRun(model="PCM", run="B06.22", grid=self.grid)]
        disk_sites = [s for n, s in self.sites.items()
                      if n != "lbnl-pdsf"]
        pdsf = self.sites["lbnl-pdsf"]
        self.datasets = {}
        for run_idx, run in enumerate(runs):
            files = monthly_files(run, years,
                                  size_override=self.file_size_override)
            if self.materialize:
                # Real SDBF bytes; sizes become the encoded lengths.
                for f in files:
                    m0, m1 = f["month_range"]
                    blob = run.encode_months(int(f["year"]), m0, m1,
                                             tuple(f["variables"]),
                                             chunks=self.sdbf_chunks)
                    f["content"] = blob
                    f["size"] = float(len(blob))
            self.datasets[run.dataset_id] = files
            self.metadata_catalog.register_dataset(
                run.dataset_id, run.model, run.run,
                description=f"{run.model} simulation {run.run}",
                variables=_VARIABLE_RECORDS)
            self.metadata_catalog.register_files(run.dataset_id, files)
            self.replica_catalog.create_collection(
                run.dataset_id, description=f"{run.model} {run.run}")
            names = [str(f["logical_name"]) for f in files]
            # Complete copy at LBNL-PDSF (tape-resident when enabled).
            for i, f in enumerate(files):
                content = f.get("content")
                if pdsf.hrm is not None:
                    from repro.storage.filesystem import FileObject
                    pdsf.hrm.mss.archive(
                        FileObject(str(f["logical_name"]),
                                   float(f["size"]), content=content),
                        tape=f"T{run_idx}{i // 12}",
                        position=(i % 12) / 12.0)
                else:
                    pdsf.fs.create(str(f["logical_name"]),
                                   float(f["size"]), content=content)
            self.replica_catalog.register_location(
                run.dataset_id, "lbnl-pdsf", "gsiftp", pdsf.hostname,
                2811, "/hpss/esg", files=names)
            for f in files:
                # Publish-time digest of the pristine copy: the anchor
                # every delivered copy is verified against.
                self.replica_catalog.register_logical_file(
                    run.dataset_id, str(f["logical_name"]),
                    float(f["size"]),
                    attributes={"digest": content_digest(
                        str(f["logical_name"]), float(f["size"]),
                        f.get("content"))})
            # Partial disk replicas: file i also lives at two disk sites.
            placements: Dict[str, List[str]] = {s.name: []
                                                for s in disk_sites}
            for i, f in enumerate(files):
                for k in range(2):
                    site = disk_sites[(i + k * 3) % len(disk_sites)]
                    site.fs.create(str(f["logical_name"]),
                                   float(f["size"]),
                                   content=f.get("content"))
                    placements[site.name].append(str(f["logical_name"]))
            for site in disk_sites:
                if placements[site.name]:
                    self.replica_catalog.register_location(
                        run.dataset_id, site.name, "gsiftp",
                        site.hostname, 2811, "/data/esg",
                        files=placements[site.name])

    # -- additional user sites ----------------------------------------------------
    def add_client(self, name: str, downlink: float = mbps(100),
                   latency: float = 0.010,
                   resilience: Optional["ResiliencePolicy"] = None,
                   config: Optional[GridFtpConfig] = None):
        """Attach another user desktop with its own request manager.

        The abstract's scaling concern — "access to, and analysis of,
        these datasets by potentially thousands of users" — is exercised
        by attaching many clients: they share the catalogs, MDS, the
        servers, and (when configured) the transfer scheduler, but each
        has its own host, filesystem, GridFTP client, and RM. Returns
        the new :class:`RequestManager`.
        """
        from repro.gridftp.client import GridFtpClient
        from repro.rm.manager import RequestManager
        spec = HostSpec(nic_rate=downlink, bus_rate=None,
                        cpu=CpuModel(coalesce=4),
                        disk=DiskArray(DiskSpec(rate=20 * 2**20),
                                       count=1))
        host = Host(self.topology, name, site=name, spec=spec)
        host.uplink(f"r-{name}")
        self.topology.duplex_link(f"r-{name}", "backbone", downlink,
                                  latency, name=f"wan-{name}")
        fs = FileSystem(self.env, f"{name}-fs")
        cfg = config or self.gridftp.config
        client = GridFtpClient(
            self.env, self.transport, self.registry,
            credential_chain=self.user.make_proxy(self.env.now),
            config=cfg, client_name=name, obs=self.obs)
        rm = RequestManager(
            self.env, self.replica_catalog, self.mds, client,
            self.registry, host, fs, nws=self.nws, logger=self.logger,
            config=cfg, obs=self.obs,
            resilience=resilience, scheduler=self.scheduler,
            tenant=name)
        return rm

    def add_fleet(self, n_users: int, users_per_pop: int = 32,
                  downlink: float = mbps(622), latency: float = 0.010,
                  config: Optional[GridFtpConfig] = None,
                  name_prefix: str = "pop"):
        """Attach ``n_users`` user desktops grouped behind shared
        points of presence — the fleet-construction fast path.

        Where :meth:`add_client` builds a host, WAN link, proxy
        credential, and GridFTP client *per user*, a fleet shares all
        of that per PoP (``users_per_pop`` users each): one proxy
        delegation for the whole fleet, one PoP host and uplink, and
        one GridFTP client (so its channel cache pools warm data
        channels across the PoP's users). Each user still gets a
        private filesystem and request manager. Because a PoP's users
        share the host node, their transfers from one server share the
        *entire* network path — exactly the shape the fluid network's
        ``aggregation_threshold`` collapses into one aggregate class.

        Returns the per-user :class:`RequestManager` list, in user
        order.
        """
        if n_users < 1:
            raise ValueError("n_users must be >= 1")
        if users_per_pop < 1:
            raise ValueError("users_per_pop must be >= 1")
        cfg = config or fleet_config()
        proxy = self.user.make_proxy(self.env.now)
        spec = HostSpec(nic_rate=downlink, bus_rate=None,
                        cpu=CpuModel(coalesce=8),
                        disk=DiskArray(DiskSpec(rate=80 * 2**20),
                                       count=4))
        rms = []
        n_pops = (n_users + users_per_pop - 1) // users_per_pop
        for p in range(n_pops):
            pop = f"{name_prefix}{p}"
            host = Host(self.topology, pop, site=pop, spec=spec)
            host.uplink(f"r-{pop}")
            self.topology.duplex_link(f"r-{pop}", "backbone", downlink,
                                      latency, name=f"wan-{pop}")
            client = GridFtpClient(
                self.env, self.transport, self.registry,
                credential_chain=proxy, config=cfg,
                client_name=pop, obs=self.obs)
            for u in range(p * users_per_pop,
                           min((p + 1) * users_per_pop, n_users)):
                fs = FileSystem(self.env, f"{name_prefix}-user{u}-fs")
                rm = RequestManager(
                    self.env, self.replica_catalog, self.mds, client,
                    self.registry, host, fs, nws=self.nws,
                    logger=self.logger, config=cfg, obs=self.obs,
                    scheduler=self.scheduler, tenant=pop)
                rms.append(rm)
        return rms

    # -- windowed gauge recording ------------------------------------------------
    def start_timeseries(self, interval: float = 5.0):
        """Attach and start a :class:`TimeSeriesRecorder` over the
        testbed's live gauges (idempotent; returns the recorder).

        Standard probe families — the resource join keys the
        critical-path attribution in :mod:`repro.obs.critical_path`
        expects:

        - ``link.wan-<site>.util`` — WAN link utilization in [0, 1]
          (both directions pooled against live capacity);
        - ``tape.<library>.busy`` / ``tape.<library>.queue`` — drives
          in service (normalized) and jobs waiting;
        - ``cache.<name>.occupancy`` — staging DiskCache fill fraction;
        - ``sched.<host>.depth`` / ``sched.<host>.active`` — admission
          queue depth and in-flight grants per server (with a shared
          scheduler);
        - ``server.<host>.conns`` — open GridFTP control connections.
        """
        from repro.obs.timeseries import TimeSeriesRecorder
        if self.obs.timeseries is not None:
            return self.obs.timeseries
        ts = TimeSeriesRecorder(self.env, interval=interval)

        wan = sorted({link.name.rsplit(":", 1)[0]
                      for link in self.topology.links.values()
                      if link.name.startswith("wan-")})

        def _link_util():
            load = self.network.link_load()
            out = {}
            for base in wan:
                used = cap = 0.0
                for suffix in (":fwd", ":rev"):
                    link = self.topology.links.get(base + suffix)
                    if link is None:
                        continue
                    cap += link.capacity
                    used += load.get(link.name, 0.0)
                out[f"link.{base}.util"] = used / cap if cap > 0 else 0.0
            return out

        ts.add_multi_probe(_link_util)
        for site in self.sites.values():
            if site.hrm is None:
                continue
            lib = site.hrm.mss.tape
            cache = site.hrm.mss.cache
            ts.add_probe(
                f"tape.{lib.name}.busy",
                lambda lib=lib: (lib.busy_drive_count / len(lib.drives)))
            ts.add_probe(f"tape.{lib.name}.queue",
                         lambda lib=lib: float(lib.queue_length))
            ts.add_probe(f"cache.{cache.name}.occupancy",
                         lambda cache=cache: cache.occupancy)
        if self.scheduler is not None:
            def _sched():
                out = {}
                for hostname in self.registry:
                    out[f"sched.{hostname}.depth"] = \
                        float(self.scheduler.queue_depth(hostname))
                    out[f"sched.{hostname}.active"] = \
                        float(self.scheduler.active_count(hostname))
                return out
            ts.add_multi_probe(_sched)

        def _conns():
            return {f"server.{hostname}.conns":
                    float(server.active_connections)
                    for hostname, server in self.registry.items()}

        ts.add_multi_probe(_conns)
        ts.start()
        self.obs.timeseries = ts
        self.timeseries = ts
        return ts

    # -- ESG-II: DODS-protocol access to the same archive -----------------------
    def enable_dods(self):
        """Stand up DODS servers over every site's filesystem.

        §9: ESG-II planned "access via DODS protocols and mechanisms";
        the same files become reachable by URL over plain HTTP with
        server-side constraint evaluation. Returns (servers, client).
        """
        from repro.baselines.dods import DodsClient, DodsServer
        servers = {}
        for site in self.sites.values():
            hostname = f"dods.{site.name}.gov"
            self.dns.register(hostname, site.host.node)
            servers[hostname] = DodsServer(self.env, site.host, site.fs,
                                           hostname)
        client = DodsClient(self.env, self.transport, servers)
        return servers, client

    # -- fault injection ---------------------------------------------------------
    def fault_injector(self, crashables: Optional[Dict] = None):
        """A :class:`~repro.net.faults.FaultInjector` wired to everything.

        Knows the testbed's links, DNS, GridFTP servers (by hostname),
        the "catalog" and "mds" directories, and every HRM (by name) —
        so any fault kind a :class:`~repro.net.faults.FaultSchedule` can
        express is injectable against this testbed. ``crashables``
        optionally maps label → an object with ``crash()``/``restart()``
        for "rm" faults (e.g. a replication campaign engine).
        """
        from repro.net.faults import FaultInjector
        if self.federation is not None:
            # "catalog" takes every shard down at once; "catalog:<site>"
            # targets one shard, degrading queries to partial answers.
            directories = {"mds": self.mds.directory,
                           "catalog": self.federation}
            for sname, shard in self.federation.sites.items():
                directories[f"catalog:{sname}"] = shard.directory
        else:
            directories = {"mds": self.mds.directory,
                           "catalog": (self.catalog_directory
                                       if self.catalog_directory is not None
                                       else self.replica_catalog.directory)}
        hrms = {site.hrm.name: site.hrm
                for site in self.sites.values() if site.hrm is not None}
        return FaultInjector(self.env, self.network, self.dns,
                             servers=dict(self.registry),
                             directories=directories, hrms=hrms,
                             crashables=crashables,
                             obs=self.obs)

    # -- conveniences -----------------------------------------------------------
    def warm_nws(self, until: float = 120.0) -> None:
        """Run the clock so NWS accumulates a few probe rounds."""
        self.env.run(until=self.env.now + until)

    def dataset_ids(self) -> List[str]:
        """The archive's dataset identifiers."""
        return sorted(self.datasets)

    def run_process(self, gen):
        """Drive a generator process to completion; return its value."""
        p = self.env.process(gen)
        self.env.run(until=p)
        return p.value

    def __repr__(self) -> str:
        return (f"EsgTestbed({len(self.sites)} sites, "
                f"{len(self.registry)} GridFTP servers, "
                f"{len(self.datasets)} datasets)")
