"""Many-tenant contention over the ESG testbed.

The abstract's scaling concern — "potentially thousands of users"
against a handful of storage sites — turns into a stampede problem the
moment every request manager opens connections greedily: servers refuse
connects (421), retries back off, and one bulk user can crowd out many
interactive ones.  :func:`run_contention` builds that workload in both
configurations:

- **unscheduled** — every RM races for the servers; server-side
  connection caps are the only brake, visible as 421 rejections and
  retry rounds;
- **scheduled** — every RM shares one
  :class:`~repro.rm.scheduler.TransferScheduler`; admission happens in
  the scheduler's fair queues, the servers never see more than the
  per-server cap, and parallel streams split a server-wide budget.

The workload mixes *small* interactive tickets (one file) with *bulk*
tickets (several files) round-robined across many user desktops, which
is exactly the mix where deficit-round-robin fairness should show up as
a p95 latency win for the small tickets without costing aggregate
goodput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gridftp.protocol import GridFtpConfig
from repro.rm.resilience import ResiliencePolicy, RetryPolicy
from repro.rm.scheduler import SchedulerConfig
from repro.scenarios.esg import EsgTestbed


@dataclass
class ContentionResult:
    """Outcome of one contention run."""

    n_tickets: int
    scheduled: bool
    duration: float                      # sim seconds, submit -> last done
    total_bytes: float                   # bytes landed by DONE files
    failed_files: int
    small_latencies: List[float] = field(default_factory=list)
    bulk_latencies: List[float] = field(default_factory=list)
    server_rejections: int = 0           # 421s across all servers
    scheduler_stats: Optional[Dict[str, float]] = None

    @property
    def goodput(self) -> float:
        """Aggregate delivered bytes/s over the whole run."""
        return self.total_bytes / self.duration if self.duration > 0 else 0.0

    @property
    def p95_small_latency(self) -> float:
        """95th-percentile completion latency of the 1-file tickets."""
        return percentile(self.small_latencies, 95.0)


def percentile(values: List[float], pct: float) -> float:
    """Nearest-rank percentile; 0 for an empty sample."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      int(round(pct / 100.0 * (len(ordered) - 1)))))
    return ordered[rank]


def run_contention(n_tickets: int = 16, *, scheduled: bool = True,
                   seed: int = 0, n_users: int = 8,
                   bulk_every: int = 4, bulk_files: int = 6,
                   file_size: float = 4 * 2**20,
                   per_server_cap: int = 20,
                   queue_depth: Optional[int] = None,
                   aging_rounds: int = 64,
                   stream_budget: Optional[int] = 32,
                   max_server_connections: int = 24,
                   parallelism: int = 4) -> ContentionResult:
    """Run ``n_tickets`` mixed tickets through the testbed.

    Every ``bulk_every``-th ticket is a bulk one (``bulk_files`` files);
    the rest request a single file.  Tickets are round-robined across
    ``n_users`` user desktops plus the built-in client.  Both
    configurations get the same seed, workload, server-side connection
    caps, and a patient resilience policy (the unscheduled stampede
    needs retry rounds to survive its own 421s).
    """
    sched_cfg = None
    if scheduled:
        # Deep queues by default: priority classes + DRR do the
        # ordering. Pass a shallow ``queue_depth`` to exercise the
        # QueueFull/spill-to-next-replica path instead.
        depth = (queue_depth if queue_depth is not None
                 else max(128, 4 * n_tickets * bulk_files))
        sched_cfg = SchedulerConfig(
            per_server_cap=per_server_cap,
            max_queue_depth=depth,
            aging_rounds=aging_rounds,
            stream_budget=stream_budget)
    # Stock backoff curve, but patient: the unscheduled stampede needs
    # many rounds to drain its own 421s, and breakers must not convert
    # overload into permanent failures.
    resilience = ResiliencePolicy(retry=RetryPolicy(max_rounds=20),
                                  breaker_failure_threshold=50)
    tb = EsgTestbed(seed=seed, with_tape=False,
                    file_size_override=file_size,
                    config=GridFtpConfig(parallelism=parallelism),
                    resilience=resilience,
                    scheduler=sched_cfg,
                    max_server_connections=max_server_connections,
                    log_capacity=10_000)
    rms = [tb.request_manager]
    for i in range(n_users - 1):
        rms.append(tb.add_client(f"user{i}", resilience=resilience))

    # Deterministic ticket plan: cycle over the catalog's files.
    catalog: List[tuple] = []
    for dataset in tb.dataset_ids():
        for f in tb.datasets[dataset]:
            catalog.append((dataset, str(f["logical_name"])))
    plans = []
    cursor = 0
    for t in range(n_tickets):
        count = bulk_files if (t + 1) % bulk_every == 0 else 1
        wanted = [catalog[(cursor + j) % len(catalog)]
                  for j in range(count)]
        cursor += count
        plans.append(wanted)

    tickets = []

    def tenant(plan, rm):
        ticket = rm.submit(plan)
        tickets.append((len(plan), ticket, tb.env.now))
        yield ticket.done

    procs = [tb.env.process(tenant(plan, rms[t % len(rms)]))
             for t, plan in enumerate(plans)]
    t0 = tb.env.now
    tb.env.run(until=tb.env.all_of(procs))
    duration = tb.env.now - t0

    result = ContentionResult(n_tickets=n_tickets, scheduled=scheduled,
                              duration=duration, total_bytes=0.0,
                              failed_files=0)
    for nfiles, ticket, submitted in tickets:
        latency = max(f.finished_at for f in ticket.files
                      if f.finished_at is not None) - submitted \
            if any(f.finished_at is not None for f in ticket.files) \
            else duration
        (result.bulk_latencies if nfiles > 1
         else result.small_latencies).append(latency)
        result.total_bytes += ticket.bytes_done
        result.failed_files += len(ticket.failed_files)
    result.server_rejections = sum(s.rejected_connections
                                   for s in tb.registry.values())
    if tb.scheduler is not None:
        result.scheduler_stats = tb.scheduler.stats()
    return result
