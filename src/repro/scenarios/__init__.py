"""Prebuilt testbeds reproducing the paper's experimental setups.

- :class:`EsgTestbed` — the Figure 1 multi-site prototype: ANL, LBNL
  (PDSF with HPSS+HRM, and Clipper), LLNL, ISI, NCAR, SDSC, a user site,
  with GridFTP everywhere, LDAP catalogs, NWS/MDS, and a request
  manager at the user's desktop.
- :class:`ScinetTestbed` — the SC'2000 floor (Figure 7): an 8-host
  Linux cluster in Dallas and an 8-host cluster at LBNL, dual-bonded
  GbE uplinks, 2.5 Gb/s WAN with a 1.5 Gb/s allowance, 10–20 ms
  latency; :func:`run_table1_schedule` reproduces the striped-transfer
  experiment (Table 1).
- :class:`CommodityTestbed` — the Figure 8 configuration: one
  100 Mb/s-NIC workstation in Dallas repeatedly sending a 2 GB file to
  Argonne over commodity internet, with the power/DNS/backbone fault
  timeline.
"""

from repro.scenarios.contention import ContentionResult, run_contention
from repro.scenarios.esg import EsgSite, EsgTestbed
from repro.scenarios.scinet import (
    ScinetTestbed,
    Table1Result,
    run_table1_schedule,
)
from repro.scenarios.commodity import (
    CommodityTestbed,
    Figure8Result,
    run_figure8_schedule,
)

__all__ = [
    "CommodityTestbed",
    "ContentionResult",
    "EsgSite",
    "EsgTestbed",
    "run_contention",
    "Figure8Result",
    "ScinetTestbed",
    "Table1Result",
    "run_figure8_schedule",
    "run_table1_schedule",
]
