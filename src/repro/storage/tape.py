"""Tape library model: drives, cartridge mounts, seeks, streaming reads.

Staging latency structure (what the RM↔HRM interaction actually depends
on): wait for a free drive, possibly swap cartridges (tens of seconds),
wind to the file (seconds to minutes), then stream at the drive's rate.

The library schedules queued jobs (policy ``"batch"``, the default)
instead of serving them strictly FIFO:

- jobs are **grouped by cartridge** so one mount is amortized over the
  whole group rather than paid per file;
- within a mounted cartridge, jobs are served in **elevator/SCAN order**
  over seek position from the drive's current head (seek cost is the
  relative wind distance, tracked per drive);
- a job whose cartridge is **already loaded in an idle drive** goes to
  that drive, never paying a spurious rewind+mount;
- **starvation is bounded by aging**: every grant that bypasses a queued
  job increments its age, and once ``age >= aging_rounds`` the oldest
  aged job (smallest sequence number) is granted next regardless of
  mount cost. A job enqueued with ``backlog`` older jobs waiting is
  therefore bypassed at most ``aging_rounds + backlog`` times: after
  ``aging_rounds`` bypasses it is aged, and each further bypass must
  grant an aged job with a smaller sequence number — there are at most
  ``backlog`` of those, and each is granted once. (Same proof shape as
  the transfer scheduler's priority-aging bound.)

Policy ``"fifo"`` preserves strict arrival order (the pre-scheduler
behaviour, kept as the benchmark baseline); both policies use the
loaded-drive preference, since picking an arbitrary idle drive while
another idle drive already holds the cartridge is simply a bug.

Demand reads run at priority 0; the HRM submits prefetch reads at
priority 1 so speculative work never delays demand staging.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.sim.core import Environment
from repro.sim.events import Event
from repro.storage.filesystem import FileObject

#: Job priorities: demand staging outranks speculative prefetch.
PRIORITY_DEMAND = 0
PRIORITY_PREFETCH = 1


@dataclass(frozen=True)
class TapeSpec:
    """Performance characteristics of the library's drives/cartridges.

    Era-typical defaults (HPSS with IBM 3590-class drives): ~14 MB/s
    streaming, ~40 s exchange+load, seeks up to a minute across a
    cartridge.
    """

    read_rate: float = 14 * 2**20
    mount_time: float = 40.0
    max_seek_time: float = 60.0
    rewind_time: float = 20.0

    def __post_init__(self) -> None:
        if self.read_rate <= 0:
            raise ValueError("read_rate must be positive")
        if min(self.mount_time, self.max_seek_time, self.rewind_time) < 0:
            raise ValueError("times must be >= 0")

    def seek_time(self, position: float) -> float:
        """Wind time across fractional ``position`` in [0, 1] of tape."""
        if not (0.0 <= position <= 1.0):
            raise ValueError("position must be in [0, 1]")
        return self.max_seek_time * position


class StageProgress:
    """Live staged-byte watermark for one tape read (cut-through feed).

    While the drive winds, zero bytes are staged; once it streams, the
    staged prefix grows linearly at the drive rate. Both phases are
    closed-form in sim time, so :meth:`at_bytes` *schedules* the exact
    watermark instant instead of polling.
    """

    def __init__(self, env: Environment, total: float):
        self.env = env
        self.total = float(total)
        self.rate: Optional[float] = None
        self.stream_started_at: Optional[float] = None
        self.completed = False
        self._pending: List[Tuple[float, Event]] = []

    def staged_bytes(self) -> float:
        """Bytes of the file readable right now."""
        if self.completed:
            return self.total
        if self.stream_started_at is None:
            return 0.0
        return min(self.total,
                   (self.env.now - self.stream_started_at) * self.rate)

    def at_bytes(self, threshold: float) -> Event:
        """Event firing when at least ``threshold`` bytes are staged."""
        ev = Event(self.env)
        threshold = min(max(threshold, 0.0), self.total)
        if self.completed or self.staged_bytes() >= threshold:
            ev.succeed(threshold)
        elif self.stream_started_at is not None:
            elapsed = self.env.now - self.stream_started_at
            self._fire_in(ev, threshold / self.rate - elapsed)
        else:
            self._pending.append((threshold, ev))
        return ev

    def _fire_in(self, ev: Event, delay: float) -> None:
        timer = self.env.timeout(max(delay, 0.0))
        timer.add_callback(
            lambda _t: None if ev.triggered else ev.succeed())

    # -- called by the serving drive --------------------------------------
    def _start(self, rate: float) -> None:
        self.rate = rate
        self.stream_started_at = self.env.now
        pending, self._pending = self._pending, []
        for threshold, ev in pending:
            self._fire_in(ev, threshold / rate)

    def _finish(self) -> None:
        self.completed = True
        pending, self._pending = self._pending, []
        for _threshold, ev in pending:
            if not ev.triggered:
                ev.succeed()


class TapeJob:
    """One queued read/write; ``done`` fires with the file on completion."""

    __slots__ = ("seq", "op", "name", "tape", "position", "file", "done",
                 "priority", "enqueued_at", "age", "backlog", "progress",
                 "granted_at", "finished_at", "drive")

    def __init__(self, seq: int, op: str, name: str, tape: str,
                 position: float, file: FileObject, done: Event,
                 priority: int, enqueued_at: float, backlog: int,
                 progress: Optional[StageProgress] = None):
        self.seq = seq
        self.op = op                    # "read" | "write"
        self.name = name
        self.tape = tape
        self.position = position
        self.file = file
        self.done = done
        self.priority = priority
        self.enqueued_at = enqueued_at
        self.age = 0                    # grants that bypassed this job
        self.backlog = backlog          # queue depth when enqueued
        self.progress = progress
        self.granted_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        self.drive: Optional[TapeDrive] = None

    def __repr__(self) -> str:
        return (f"TapeJob(#{self.seq} {self.op} {self.name!r} "
                f"tape={self.tape} pos={self.position:.2f} "
                f"prio={self.priority} age={self.age})")


class TapeDrive:
    """One drive; remembers the loaded cartridge and the head position."""

    def __init__(self, name: str):
        self.name = name
        self.loaded_tape: Optional[str] = None
        # Cartridge the in-flight job needs: set at grant time, before
        # the mount completes (loaded_tape only changes afterwards).
        self.target_tape: Optional[str] = None
        self.head = 0.0          # fractional position after the last job
        self.mounts = 0
        self.bytes_read = 0.0


class TapeLibrary:
    """A robot library: N drives shared by all staging requests.

    Files are registered to (tape, position); :meth:`read` is a
    simulation process returning the file after queue wait + mount +
    seek + stream. :meth:`submit_read` / :meth:`submit_write` expose the
    underlying :class:`TapeJob` for callers that schedule around it.
    """

    def __init__(self, env: Environment, drives: int = 2,
                 spec: Optional[TapeSpec] = None, name: str = "tape",
                 policy: str = "batch", aging_rounds: int = 8, obs=None):
        if drives < 1:
            raise ValueError("need at least one drive")
        if policy not in ("batch", "fifo"):
            raise ValueError(f"unknown tape policy {policy!r}")
        if aging_rounds < 1:
            raise ValueError("aging_rounds must be >= 1")
        self.env = env
        self.name = name
        self.spec = spec or TapeSpec()
        self.policy = policy
        self.aging_rounds = aging_rounds
        self.obs = obs          # optional repro.obs.Observability bundle
        self.drives = [TapeDrive(f"{name}-drive{i}") for i in range(drives)]
        self._catalog: Dict[str, Tuple[str, float, FileObject]] = {}
        self._idle: List[TapeDrive] = list(self.drives)
        self._queue: List[TapeJob] = []
        self._seq = 0
        self.mount_reuses = 0   # jobs served without a cartridge exchange
        self.jobs_done = 0

    # -- catalog ------------------------------------------------------------
    def register(self, file: FileObject, tape: str, position: float) -> None:
        """Record that ``file`` lives on ``tape`` at fractional position."""
        if not (0.0 <= position <= 1.0):
            raise ValueError("position must be in [0, 1]")
        self._catalog[file.name] = (tape, position, file)

    def lookup(self, name: str) -> FileObject:
        """The registered file (raises KeyError if absent)."""
        return self._catalog[name][2]

    def placement(self, name: str) -> Tuple[str, float]:
        """``(tape, position)`` for a registered file."""
        tape, position, _file = self._catalog[name]
        return tape, position

    def has(self, name: str) -> bool:
        """True if the file is on tape here."""
        return name in self._catalog

    @property
    def queue_length(self) -> int:
        """Jobs waiting for a drive (in-service jobs excluded)."""
        return len(self._queue)

    @property
    def busy_drive_count(self) -> int:
        """Drives currently mounted/seeking/streaming (gauge probe)."""
        return len(self.drives) - len(self._idle)

    @property
    def idle_drive_count(self) -> int:
        """Drives with no job assigned right now."""
        return len(self._idle)

    @property
    def mounts_total(self) -> int:
        """Cartridge exchanges across all drives."""
        return sum(d.mounts for d in self.drives)

    # -- staging ---------------------------------------------------------------
    def submit_read(self, name: str, priority: int = PRIORITY_DEMAND,
                    progress: Optional[StageProgress] = None) -> TapeJob:
        """Enqueue a read; returns the job (wait on ``job.done``)."""
        entry = self._catalog.get(name)
        if entry is None:
            raise KeyError(f"{self.name}: no file {name!r} on tape")
        tape, position, file = entry
        return self._submit("read", name, tape, position, file,
                            priority, progress)

    def submit_write(self, file: FileObject, tape: str, position: float,
                     priority: int = PRIORITY_DEMAND) -> TapeJob:
        """Enqueue a migration write; registered in the catalog on
        completion."""
        if not (0.0 <= position <= 1.0):
            raise ValueError("position must be in [0, 1]")
        return self._submit("write", file.name, tape, position, file,
                            priority, None)

    def read(self, name: str, priority: int = PRIORITY_DEMAND,
             progress: Optional[StageProgress] = None):
        """Simulation process: stage ``name`` off tape; returns the file.

        Cost = drive wait + (mount if the assigned drive holds a
        different cartridge) + relative seek + size/read_rate.
        """
        job = self.submit_read(name, priority, progress)
        file = yield job.done
        return file

    def write(self, file: FileObject, tape: str, position: float):
        """Simulation process: migrate a file onto tape.

        Cost mirrors :meth:`read` (write rate = read rate for these
        drives). The file is registered in the catalog on completion.
        """
        job = self.submit_write(file, tape, position)
        file = yield job.done
        return file

    # -- scheduler ---------------------------------------------------------
    def _submit(self, op: str, name: str, tape: str, position: float,
                file: FileObject, priority: int,
                progress: Optional[StageProgress]) -> TapeJob:
        self._seq += 1
        job = TapeJob(self._seq, op, name, tape, position, file,
                      Event(self.env), priority, self.env.now,
                      backlog=len(self._queue), progress=progress)
        self._queue.append(job)
        self._dispatch()
        return job

    def _dispatch(self) -> None:
        """Assign queued jobs to idle drives (event-driven, no polling)."""
        while self._idle and self._queue:
            picked = self._select()
            if picked is None:
                # Every eligible job is waiting for a cartridge that is
                # spinning in a busy drive; that drive's completion
                # re-dispatches. No grant happened, so nobody ages.
                break
            job, drive = picked
            for other in self._queue:
                if other is not job:
                    other.age += 1
            self._queue.remove(job)
            self._idle.remove(drive)
            job.granted_at = self.env.now
            job.drive = drive
            drive.target_tape = job.tape
            self.env.process(self._service(drive, job))

    def _select(self) -> Optional[Tuple[TapeJob, TapeDrive]]:
        """Pick the next (job, drive) pair, or ``None`` to leave the
        idle drives alone this round. Deterministic: lists only, ties
        broken by sequence number."""
        if self.policy == "fifo":
            return self._queue[0], self._drive_for(self._queue[0].tape)
        # Aged jobs preempt batching: grant the oldest one outright.
        aged = [j for j in self._queue if j.age >= self.aging_rounds]
        if aged:
            job = min(aged, key=lambda j: j.seq)
            return job, self._drive_for(job.tape)
        # Cartridge affinity: a group whose tape a busy drive holds or
        # is mounting waits for that drive — finishing the in-flight
        # work costs seconds, remounting elsewhere costs a rewind +
        # mount (aged jobs above still remount rather than starve).
        loaded = [d.loaded_tape for d in self._idle
                  if d.loaded_tape is not None]
        busy_target = {d.target_tape for d in self.drives
                       if d not in self._idle
                       and d.target_tape is not None}
        # Priority classes in order (demand before prefetch), but fall
        # through to a lower class rather than idle a drive when every
        # higher-class group is deferred behind a busy drive.
        for prio in sorted({j.priority for j in self._queue}):
            groups: Dict[str, List[TapeJob]] = {}
            for j in self._queue:
                if j.priority == prio:
                    groups.setdefault(j.tape, []).append(j)
            eligible = [t for t in groups
                        if t in loaded or t not in busy_target]
            if not eligible:
                continue
            # Prefer a cartridge already sitting in an idle drive (free
            # mount); otherwise open the largest group. Ties: oldest.
            candidates = [t for t in eligible if t in loaded] or eligible
            tape = max(candidates,
                       key=lambda t: (len(groups[t]),
                                      -min(j.seq for j in groups[t])))
            drive = self._drive_for(tape)
            head = drive.head if drive.loaded_tape == tape else 0.0
            return self._scan_pick(groups[tape], head), drive
        return None

    def _drive_for(self, tape: str) -> TapeDrive:
        """Idle drive holding ``tape`` if any; else an empty drive (no
        rewind needed); else the least-recently idled drive."""
        for d in self._idle:
            if d.loaded_tape == tape:
                return d
        for d in self._idle:
            if d.loaded_tape is None:
                return d
        return self._idle[0]

    @staticmethod
    def _scan_pick(jobs: List[TapeJob], head: float) -> TapeJob:
        """Elevator order: nearest job at/after the head; wrap to the
        start of the tape when the upward sweep is exhausted."""
        ahead = [j for j in jobs if j.position >= head - 1e-12]
        pool = ahead or jobs
        return min(pool, key=lambda j: (j.position, j.seq))

    def _service(self, drive: TapeDrive, job: TapeJob):
        spec = self.spec
        try:
            if drive.loaded_tape != job.tape:
                if drive.loaded_tape is not None:
                    yield self.env.timeout(spec.rewind_time)
                yield self.env.timeout(spec.mount_time)
                drive.loaded_tape = job.tape
                drive.head = 0.0
                drive.mounts += 1
                if self.obs is not None:
                    self.obs.count("tape.mounts_total", library=self.name,
                                   drive=drive.name)
                    self.obs.event("tape.mount", prog="tape",
                                   host=self.name, drive=drive.name,
                                   tape=job.tape, file=job.name)
            else:
                self.mount_reuses += 1
            seek = spec.seek_time(abs(job.position - drive.head))
            if seek > 0.0:
                yield self.env.timeout(seek)
            drive.head = job.position
            if self.obs is not None and job.op == "read":
                # Milestone: mount/seek overhead ends here; lifeline
                # analysis blames the time after this on streaming.
                self.obs.event("tape.read.begin", prog="tape",
                               host=self.name, drive=drive.name,
                               tape=job.tape, file=job.name)
            if job.progress is not None:
                job.progress._start(spec.read_rate)
            yield self.env.timeout(job.file.size / spec.read_rate)
            if job.op == "read":
                drive.bytes_read += job.file.size
            else:
                self._catalog[job.name] = (job.tape, job.position, job.file)
            if job.progress is not None:
                job.progress._finish()
            job.finished_at = self.env.now
            self.jobs_done += 1
            job.done.succeed(job.file)
        finally:
            self._idle.append(drive)
            self._dispatch()

    def estimate_stage_time(self, name: str) -> float:
        """Optimistic staging estimate (free drive, right cartridge)."""
        tape, position, file = self._catalog[name]
        return (self.spec.seek_time(position)
                + file.size / self.spec.read_rate)

    def __repr__(self) -> str:
        return (f"TapeLibrary({self.name!r}, {len(self.drives)} drives, "
                f"{len(self._catalog)} files, policy={self.policy})")
