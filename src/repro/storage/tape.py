"""Tape library model: drives, cartridge mounts, seeks, streaming reads.

Staging latency structure (what the RM↔HRM interaction actually depends
on): wait for a free drive, possibly swap cartridges (tens of seconds),
wind to the file (seconds to minutes), then stream at the drive's rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.storage.filesystem import FileObject


@dataclass(frozen=True)
class TapeSpec:
    """Performance characteristics of the library's drives/cartridges.

    Era-typical defaults (HPSS with IBM 3590-class drives): ~14 MB/s
    streaming, ~40 s exchange+load, seeks up to a minute across a
    cartridge.
    """

    read_rate: float = 14 * 2**20
    mount_time: float = 40.0
    max_seek_time: float = 60.0
    rewind_time: float = 20.0

    def __post_init__(self) -> None:
        if self.read_rate <= 0:
            raise ValueError("read_rate must be positive")
        if min(self.mount_time, self.max_seek_time, self.rewind_time) < 0:
            raise ValueError("times must be >= 0")

    def seek_time(self, position: float) -> float:
        """Wind time to fractional ``position`` in [0, 1] on a cartridge."""
        if not (0.0 <= position <= 1.0):
            raise ValueError("position must be in [0, 1]")
        return self.max_seek_time * position


class TapeDrive:
    """One drive; remembers which cartridge is loaded."""

    def __init__(self, name: str):
        self.name = name
        self.loaded_tape: Optional[str] = None
        self.mounts = 0
        self.bytes_read = 0.0


class TapeLibrary:
    """A robot library: N drives shared by all staging requests.

    Files are registered to (tape, position); :meth:`read` is a
    simulation process returning the file after mount+seek+stream.
    """

    def __init__(self, env: Environment, drives: int = 2,
                 spec: Optional[TapeSpec] = None, name: str = "tape"):
        if drives < 1:
            raise ValueError("need at least one drive")
        self.env = env
        self.name = name
        self.spec = spec or TapeSpec()
        self.drives = [TapeDrive(f"{name}-drive{i}") for i in range(drives)]
        self._drive_pool = Resource(env, capacity=drives)
        self._catalog: Dict[str, Tuple[str, float, FileObject]] = {}
        self._idle_drives = list(self.drives)
        self._busy: Dict[int, TapeDrive] = {}

    # -- catalog ------------------------------------------------------------
    def register(self, file: FileObject, tape: str, position: float) -> None:
        """Record that ``file`` lives on ``tape`` at fractional position."""
        if not (0.0 <= position <= 1.0):
            raise ValueError("position must be in [0, 1]")
        self._catalog[file.name] = (tape, position, file)

    def lookup(self, name: str) -> FileObject:
        """The registered file (raises KeyError if absent)."""
        return self._catalog[name][2]

    def has(self, name: str) -> bool:
        """True if the file is on tape here."""
        return name in self._catalog

    @property
    def queue_length(self) -> int:
        """Requests waiting for a drive."""
        return self._drive_pool.queue_length

    # -- staging ---------------------------------------------------------------
    def read(self, name: str):
        """Simulation process: stage ``name`` off tape; returns the file.

        Cost = drive wait + (mount if the drive holds a different
        cartridge) + seek + size/read_rate.
        """
        entry = self._catalog.get(name)
        if entry is None:
            raise KeyError(f"{self.name}: no file {name!r} on tape")
        tape, position, file = entry
        req = self._drive_pool.request()
        yield req
        drive = self._idle_drives.pop()
        try:
            if drive.loaded_tape != tape:
                if drive.loaded_tape is not None:
                    yield self.env.timeout(self.spec.rewind_time)
                yield self.env.timeout(self.spec.mount_time)
                drive.loaded_tape = tape
                drive.mounts += 1
            yield self.env.timeout(self.spec.seek_time(position))
            yield self.env.timeout(file.size / self.spec.read_rate)
            drive.bytes_read += file.size
            return file
        finally:
            self._idle_drives.append(drive)
            self._drive_pool.release(req)

    def write(self, file: FileObject, tape: str, position: float):
        """Simulation process: migrate a file onto tape.

        Cost = drive wait + (mount if needed) + seek + size/write_rate
        (write rate = read rate for these drives). The file is
        registered in the catalog on completion.
        """
        if not (0.0 <= position <= 1.0):
            raise ValueError("position must be in [0, 1]")
        req = self._drive_pool.request()
        yield req
        drive = self._idle_drives.pop()
        try:
            if drive.loaded_tape != tape:
                if drive.loaded_tape is not None:
                    yield self.env.timeout(self.spec.rewind_time)
                yield self.env.timeout(self.spec.mount_time)
                drive.loaded_tape = tape
                drive.mounts += 1
            yield self.env.timeout(self.spec.seek_time(position))
            yield self.env.timeout(file.size / self.spec.read_rate)
            self._catalog[file.name] = (tape, position, file)
            return file
        finally:
            self._idle_drives.append(drive)
            self._drive_pool.release(req)

    def estimate_stage_time(self, name: str) -> float:
        """Optimistic staging estimate (free drive, right cartridge)."""
        tape, position, file = self._catalog[name]
        return (self.spec.seek_time(position)
                + file.size / self.spec.read_rate)

    def __repr__(self) -> str:
        return (f"TapeLibrary({self.name!r}, {len(self.drives)} drives, "
                f"{len(self._catalog)} files)")
