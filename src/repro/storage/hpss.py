"""An HPSS-like mass storage system: tape namespace + staging cache."""

from __future__ import annotations

from typing import Optional

from repro.sim.core import Environment
from repro.storage.cache import DiskCache
from repro.storage.filesystem import FileObject
from repro.storage.tape import (
    PRIORITY_DEMAND,
    StageProgress,
    TapeLibrary,
    TapeSpec,
)


class MassStorageSystem:
    """Tape-resident archive with a disk staging cache in front.

    The paper calls this "a mass storage system (MSS) that is not Grid
    enabled" — GridFTP cannot serve from it directly, which is why the
    HRM exists. :meth:`retrieve` is the staging primitive: cache hit is
    instant; a miss pays the full tape path and lands in the cache.
    """

    def __init__(self, env: Environment, cache_capacity: float,
                 drives: int = 2, tape_spec: Optional[TapeSpec] = None,
                 name: str = "hpss", tape_policy: str = "batch",
                 prefetch_share: float = 0.5, obs=None):
        self.env = env
        self.name = name
        self.tape = TapeLibrary(env, drives=drives, spec=tape_spec,
                                name=f"{name}-tape", policy=tape_policy,
                                obs=obs)
        self.cache = DiskCache(env, cache_capacity, name=f"{name}-cache",
                               prefetch_share=prefetch_share)
        self.stage_count = 0
        self.migrations = 0

    # -- archive management -------------------------------------------------
    def archive(self, file: FileObject, tape: str, position: float) -> None:
        """Register a file as tape-resident."""
        self.tape.register(file, tape, position)

    def has(self, name: str) -> bool:
        """True if the file exists in this MSS (tape or cache)."""
        return self.tape.has(name) or name in self.cache._entries

    def is_staged(self, name: str) -> bool:
        """True if the file is currently on the disk cache."""
        return self.cache.contains(name)

    # -- ingest ---------------------------------------------------------------------
    def store(self, file: FileObject, tape: str, position: float):
        """Simulation process: ingest new data (the archival write path).

        The file lands in the disk cache immediately (readable right
        away) and migrates to tape in the background — the behaviour a
        climate model writing output into HPSS sees. Returns once the
        migration completes.
        """
        self.cache.put(file)
        self.cache.pin(file.name)  # never evict before it is on tape
        try:
            yield from self.tape.write(file, tape, position)
        finally:
            self.cache.unpin(file.name)
        self.migrations += 1
        return file

    # -- staging -------------------------------------------------------------------
    def retrieve(self, name: str, priority: int = PRIORITY_DEMAND,
                 kind: str = "demand",
                 progress: Optional[StageProgress] = None):
        """Simulation process: make ``name`` disk-resident; returns it.

        ``priority`` orders the tape queue (demand before prefetch),
        ``kind`` selects the cache admission policy, and ``progress``
        (if given) is fed the live staged-byte watermark by the drive.
        """
        cached = self.cache.get(name)
        if cached is not None:
            if progress is not None:
                progress._finish()
            return cached
        file = yield from self.tape.read(name, priority=priority,
                                         progress=progress)
        self.stage_count += 1
        return self.cache.put(file, kind=kind)

    def estimate_retrieve_time(self, name: str) -> float:
        """0 for cached files, else the optimistic tape estimate."""
        if self.cache.contains(name):
            return 0.0
        return self.tape.estimate_stage_time(name)

    def __repr__(self) -> str:
        return f"MassStorageSystem({self.name!r}, cache={self.cache!r})"
