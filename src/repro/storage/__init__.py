"""Storage substrates: filesystems, caches, tape, HPSS, and the HRM.

The ESG prototype stores climate files on ordinary disk filesystems at
most sites, and on an HPSS mass-storage system at LBNL. HPSS is "not Grid
enabled": GridFTP cannot read tape directly, so LBNL's **Hierarchical
Resource Manager (HRM)** sits in front of it and stages files from tape
to its local disk cache; only then does the request manager start a WAN
transfer (paper §4).

- :class:`FileSystem` — a namespace with capacity accounting and seek
  costs, attached to a host's disk array.
- :class:`DiskCache` — LRU cache with pinning, used as the HRM staging
  area.
- :class:`TapeLibrary` — drives (contended), cartridge mounts, seeks,
  and sequential read rates.
- :class:`MassStorageSystem` — HPSS-like: tape namespace + staging cache.
- :class:`HierarchicalResourceManager` — queues stage requests,
  deduplicates concurrent requests for one file, pins files while they
  are being transferred.
"""

from repro.storage.filesystem import (
    FileExistsError_,
    FileNotFoundError_,
    FileObject,
    FileSystem,
    NoSpaceError,
)
from repro.storage.cache import DiskCache
from repro.storage.tape import (
    StageProgress,
    TapeDrive,
    TapeJob,
    TapeLibrary,
    TapeSpec,
)
from repro.storage.hpss import MassStorageSystem
from repro.storage.hrm import HierarchicalResourceManager, StageRequest

__all__ = [
    "DiskCache",
    "FileExistsError_",
    "FileNotFoundError_",
    "FileObject",
    "FileSystem",
    "HierarchicalResourceManager",
    "MassStorageSystem",
    "NoSpaceError",
    "StageProgress",
    "StageRequest",
    "TapeDrive",
    "TapeJob",
    "TapeLibrary",
    "TapeSpec",
]
