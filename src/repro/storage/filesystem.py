"""Simulated filesystem: namespace, capacity, seek costs.

Bulk data *movement* time is the fluid network's job (a host's disk link
rate-limits flows that start or end at its ``store`` endpoint); the
filesystem accounts for what exists, how big it is, whether it fits, and
the per-open positioning cost. Files may optionally carry real content
bytes — the climate-data analysis path serializes real arrays through the
same namespace the bulk path uses.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.sim.core import Environment


class FileNotFoundError_(Exception):
    """No such file in this filesystem."""


class FileExistsError_(Exception):
    """File already exists and overwrite=False."""


class NoSpaceError(Exception):
    """The filesystem cannot hold the new file."""


@dataclass
class FileObject:
    """One stored file.

    ``content`` is optional real bytes (used by the analysis pipeline);
    when absent the file is synthetic and only ``size`` matters. ``size``
    always wins for accounting, so a 2 GB synthetic file costs no RAM.
    """

    name: str
    size: float
    content: Optional[bytes] = None
    created_at: float = 0.0
    metadata: Dict[str, object] = field(default_factory=dict)
    _serial: int = field(default_factory=itertools.count(1).__next__)

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be >= 0")
        if self.content is not None and self.size != len(self.content):
            raise ValueError("size disagrees with content length")

    def with_name(self, name: str) -> "FileObject":
        """A copy under a different name (replication keeps bytes equal)."""
        return FileObject(name, self.size, self.content, self.created_at,
                          dict(self.metadata))


class FileSystem:
    """A flat namespace backed by a host's disk array.

    Parameters
    ----------
    env:
        Simulation environment.
    name:
        Label for error messages (usually ``host.name``).
    capacity:
        Total bytes available.
    seek_time:
        Positioning cost charged by :meth:`open` (a generator).
    """

    def __init__(self, env: Environment, name: str,
                 capacity: float = float("inf"), seek_time: float = 0.008):
        self.env = env
        self.name = name
        self.capacity = capacity
        self.seek_time = seek_time
        self._files: Dict[str, FileObject] = {}
        self.used = 0.0

    # -- namespace -------------------------------------------------------
    def store(self, file: FileObject, overwrite: bool = False) -> FileObject:
        """Add a file (instantaneous namespace operation)."""
        existing = self._files.get(file.name)
        if existing is not None and not overwrite:
            raise FileExistsError_(f"{self.name}:{file.name}")
        freed = existing.size if existing is not None else 0.0
        if self.used - freed + file.size > self.capacity:
            raise NoSpaceError(
                f"{self.name}: need {file.size:.0f}B, "
                f"free {self.capacity - self.used + freed:.0f}B")
        if existing is not None:
            self.used -= existing.size
        file.created_at = self.env.now
        self._files[file.name] = file
        self.used += file.size
        return file

    def create(self, name: str, size: float,
               content: Optional[bytes] = None,
               overwrite: bool = False) -> FileObject:
        """Convenience: build and store a :class:`FileObject`."""
        return self.store(FileObject(name, size, content), overwrite=overwrite)

    def delete(self, name: str) -> None:
        """Remove a file."""
        f = self._files.pop(name, None)
        if f is None:
            raise FileNotFoundError_(f"{self.name}:{name}")
        self.used -= f.size

    def stat(self, name: str) -> FileObject:
        """Look a file up (raises if absent)."""
        f = self._files.get(name)
        if f is None:
            raise FileNotFoundError_(f"{self.name}:{name}")
        return f

    def exists(self, name: str) -> bool:
        """True if ``name`` is stored here."""
        return name in self._files

    def open(self, name: str):
        """Simulation process: position the disk and return the file."""
        f = self.stat(name)
        yield self.env.timeout(self.seek_time)
        return f

    def __iter__(self) -> Iterator[FileObject]:
        return iter(self._files.values())

    def __len__(self) -> int:
        return len(self._files)

    @property
    def free(self) -> float:
        """Unused capacity in bytes."""
        return self.capacity - self.used

    def __repr__(self) -> str:
        return (f"FileSystem({self.name!r}, {len(self)} files, "
                f"{self.used / 2**30:.2f} GiB used)")
