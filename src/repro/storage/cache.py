"""LRU disk cache with pinning, used as the HRM staging area."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.sim.core import Environment
from repro.storage.filesystem import FileObject, NoSpaceError


class DiskCache:
    """An LRU-evicting byte cache over a staging disk.

    Files being transferred are *pinned* so a burst of new staging cannot
    evict data out from under an in-flight GridFTP stream (paper §4: HRM
    "stages files from the MSS to its local disk cache" and the RM then
    moves them over the WAN).

    Entries carry a *kind*: ``"demand"`` (somebody asked for the bytes)
    or ``"prefetch"`` (the HRM staged them speculatively). Prefetch is
    admitted under a strict policy so speculation can never hurt demand:

    - prefetch entries may hold at most ``prefetch_share`` of capacity;
    - inserting a prefetch entry may evict only *unpinned prefetch*
      entries — never demand data, never pinned data;
    - demand inserts evict unpinned prefetch entries first (speculative
      bytes are the cheapest to give back), then fall back to plain
      unpinned LRU;
    - pinning a prefetch entry promotes it to demand (the speculation
      paid off and the bytes are now in use).
    """

    def __init__(self, env: Environment, capacity: float,
                 name: str = "cache", prefetch_share: float = 0.5):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if not (0.0 <= prefetch_share <= 1.0):
            raise ValueError("prefetch_share must be in [0, 1]")
        self.env = env
        self.name = name
        self.capacity = capacity
        self.prefetch_share = prefetch_share
        self._entries: "OrderedDict[str, FileObject]" = OrderedDict()
        self._pins: Dict[str, int] = {}
        self._kinds: Dict[str, str] = {}
        self.used = 0.0
        self.prefetch_used = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.prefetch_evictions = 0

    # -- queries --------------------------------------------------------------
    def contains(self, name: str) -> bool:
        """True if ``name`` is cached (counts as a touch)."""
        if name in self._entries:
            self._entries.move_to_end(name)
            return True
        return False

    def get(self, name: str) -> Optional[FileObject]:
        """The cached file, touched, or None (hit/miss accounting)."""
        entry = self._entries.get(name)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(name)
        return entry

    def kind(self, name: str) -> Optional[str]:
        """``"demand"``/``"prefetch"`` for a cached entry, else None."""
        return self._kinds.get(name)

    @property
    def free(self) -> float:
        """Unreserved bytes."""
        return self.capacity - self.used

    @property
    def occupancy(self) -> float:
        """Used fraction in [0, 1] (gauge probe)."""
        return self.used / self.capacity

    def __len__(self) -> int:
        return len(self._entries)

    # -- mutation ----------------------------------------------------------------
    def put(self, file: FileObject, kind: str = "demand") -> FileObject:
        """Insert a file, evicting to make room under the kind's policy.

        Raises :class:`NoSpaceError` if eviction cannot fit it (for
        demand: everything else is pinned; for prefetch: the prefetch
        budget or evictable prefetch bytes are exhausted).
        """
        if kind not in ("demand", "prefetch"):
            raise ValueError(f"unknown cache entry kind {kind!r}")
        if file.name in self._entries:
            self._entries.move_to_end(file.name)
            if kind == "demand":
                self._promote(file.name)
            return self._entries[file.name]
        if file.size > self.capacity:
            raise NoSpaceError(
                f"{self.name}: file {file.name!r} ({file.size:.0f}B) "
                f"exceeds cache capacity")
        if kind == "prefetch":
            budget = self.prefetch_share * self.capacity
            if file.size > budget:
                raise NoSpaceError(
                    f"{self.name}: prefetch of {file.name!r} "
                    f"({file.size:.0f}B) exceeds the prefetch budget "
                    f"({budget:.0f}B)")
            while self.prefetch_used + file.size > budget:
                if not self._evict_one(prefetch_only=True):
                    raise NoSpaceError(
                        f"{self.name}: prefetch budget exhausted for "
                        f"{file.name!r}")
        while self.used + file.size > self.capacity:
            if not self._evict_one(prefetch_only=(kind == "prefetch")):
                raise NoSpaceError(
                    f"{self.name}: cannot free space for {file.name!r} "
                    f"(all {len(self._entries)} entries pinned"
                    + (" or demand" if kind == "prefetch" else "") + ")")
        self._entries[file.name] = file
        self._kinds[file.name] = kind
        self.used += file.size
        if kind == "prefetch":
            self.prefetch_used += file.size
        return file

    def can_admit_prefetch(self, size: float) -> bool:
        """True if a prefetch of ``size`` bytes would be admitted now
        (possibly by evicting other unpinned prefetch entries)."""
        budget = self.prefetch_share * self.capacity
        evictable = sum(
            e.size for n, e in self._entries.items()
            if self._kinds.get(n) == "prefetch"
            and self._pins.get(n, 0) == 0)
        if size > budget - (self.prefetch_used - evictable):
            return False
        return size <= self.free + evictable

    def _evict_one(self, prefetch_only: bool = False) -> bool:
        # Speculative bytes first: evicting them costs a maybe, evicting
        # demand LRU costs a certain re-stage.
        for name, entry in self._entries.items():
            if (self._pins.get(name, 0) == 0
                    and self._kinds.get(name) == "prefetch"):
                self._drop(name, entry)
                return True
        if prefetch_only:
            return False
        for name, entry in self._entries.items():
            if self._pins.get(name, 0) == 0:
                self._drop(name, entry)
                return True
        return False

    def _drop(self, name: str, entry: FileObject) -> None:
        del self._entries[name]
        self.used -= entry.size
        if self._kinds.pop(name, None) == "prefetch":
            self.prefetch_used -= entry.size
            self.prefetch_evictions += 1
        self.evictions += 1

    def _promote(self, name: str) -> None:
        """Reclassify a prefetch entry as demand (budget released)."""
        if self._kinds.get(name) == "prefetch":
            self._kinds[name] = "demand"
            self.prefetch_used -= self._entries[name].size

    def invalidate(self, name: str) -> None:
        """Drop an entry (pinned entries cannot be invalidated)."""
        if self._pins.get(name, 0) > 0:
            raise RuntimeError(f"{name!r} is pinned")
        entry = self._entries.pop(name, None)
        if entry is not None:
            self.used -= entry.size
            if self._kinds.pop(name, None) == "prefetch":
                self.prefetch_used -= entry.size

    # -- pinning ------------------------------------------------------------------
    def pin(self, name: str) -> None:
        """Protect an entry from eviction (nestable). Pinning promotes
        prefetch entries to demand: the bytes are in active use."""
        if name not in self._entries:
            raise KeyError(f"{self.name}: cannot pin absent entry {name!r}")
        self._promote(name)
        self._pins[name] = self._pins.get(name, 0) + 1

    def unpin(self, name: str) -> None:
        """Release one pin."""
        count = self._pins.get(name, 0)
        if count <= 0:
            raise RuntimeError(f"{name!r} is not pinned")
        if count == 1:
            del self._pins[name]
        else:
            self._pins[name] = count - 1

    def is_pinned(self, name: str) -> bool:
        """True while any pin is outstanding."""
        return self._pins.get(name, 0) > 0

    def pin_count(self, name: str) -> int:
        """Outstanding pins on an entry (0 if absent or unpinned)."""
        return self._pins.get(name, 0)

    def __repr__(self) -> str:
        return (f"DiskCache({self.name!r}, {len(self)} entries, "
                f"{self.used / 2**30:.2f}/{self.capacity / 2**30:.2f} GiB, "
                f"{self.hits}h/{self.misses}m)")
