"""LRU disk cache with pinning, used as the HRM staging area."""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.sim.core import Environment
from repro.storage.filesystem import FileObject, NoSpaceError


class DiskCache:
    """An LRU-evicting byte cache over a staging disk.

    Files being transferred are *pinned* so a burst of new staging cannot
    evict data out from under an in-flight GridFTP stream (paper §4: HRM
    "stages files from the MSS to its local disk cache" and the RM then
    moves them over the WAN).
    """

    def __init__(self, env: Environment, capacity: float, name: str = "cache"):
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.env = env
        self.name = name
        self.capacity = capacity
        self._entries: "OrderedDict[str, FileObject]" = OrderedDict()
        self._pins: Dict[str, int] = {}
        self.used = 0.0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- queries --------------------------------------------------------------
    def contains(self, name: str) -> bool:
        """True if ``name`` is cached (counts as a touch)."""
        if name in self._entries:
            self._entries.move_to_end(name)
            return True
        return False

    def get(self, name: str) -> Optional[FileObject]:
        """The cached file, touched, or None (hit/miss accounting)."""
        entry = self._entries.get(name)
        if entry is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(name)
        return entry

    @property
    def free(self) -> float:
        """Unreserved bytes."""
        return self.capacity - self.used

    def __len__(self) -> int:
        return len(self._entries)

    # -- mutation ----------------------------------------------------------------
    def put(self, file: FileObject) -> FileObject:
        """Insert a file, evicting unpinned LRU entries to make room.

        Raises :class:`NoSpaceError` if even full eviction cannot fit it
        (e.g. everything else is pinned).
        """
        if file.name in self._entries:
            self._entries.move_to_end(file.name)
            return self._entries[file.name]
        if file.size > self.capacity:
            raise NoSpaceError(
                f"{self.name}: file {file.name!r} ({file.size:.0f}B) "
                f"exceeds cache capacity")
        while self.used + file.size > self.capacity:
            if not self._evict_one():
                raise NoSpaceError(
                    f"{self.name}: cannot free space for {file.name!r} "
                    f"(all {len(self._entries)} entries pinned)")
        self._entries[file.name] = file
        self.used += file.size
        return file

    def _evict_one(self) -> bool:
        for name, entry in self._entries.items():
            if self._pins.get(name, 0) == 0:
                del self._entries[name]
                self.used -= entry.size
                self.evictions += 1
                return True
        return False

    def invalidate(self, name: str) -> None:
        """Drop an entry (pinned entries cannot be invalidated)."""
        if self._pins.get(name, 0) > 0:
            raise RuntimeError(f"{name!r} is pinned")
        entry = self._entries.pop(name, None)
        if entry is not None:
            self.used -= entry.size

    # -- pinning ------------------------------------------------------------------
    def pin(self, name: str) -> None:
        """Protect an entry from eviction (nestable)."""
        if name not in self._entries:
            raise KeyError(f"{self.name}: cannot pin absent entry {name!r}")
        self._pins[name] = self._pins.get(name, 0) + 1

    def unpin(self, name: str) -> None:
        """Release one pin."""
        count = self._pins.get(name, 0)
        if count <= 0:
            raise RuntimeError(f"{name!r} is not pinned")
        if count == 1:
            del self._pins[name]
        else:
            self._pins[name] = count - 1

    def is_pinned(self, name: str) -> bool:
        """True while any pin is outstanding."""
        return self._pins.get(name, 0) > 0

    def __repr__(self) -> str:
        return (f"DiskCache({self.name!r}, {len(self)} entries, "
                f"{self.used / 2**30:.2f}/{self.capacity / 2**30:.2f} GiB, "
                f"{self.hits}h/{self.misses}m)")
