"""The Hierarchical Resource Manager (HRM).

Paper §4: "HRM is a component that sits in front of the MSS (in this case
an HPSS system at LBNL) and stages files from the MSS to its local disk
cache. After this action is complete, the RM uses GridFTP to move the
file securely over the wide-area network to its destination."

The HRM here:

- accepts stage requests and deduplicates concurrent requests for the
  same file (one tape read serves all waiters),
- publishes staged files into the host filesystem GridFTP serves from,
- pins staged files in the MSS cache while transfers reference them,
  releasing the pin on :meth:`release`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.sim.core import Environment
from repro.sim.events import Event
from repro.storage.filesystem import FileSystem
from repro.storage.hpss import MassStorageSystem


class StagingError(Exception):
    """A stage request failed (tape drive / HRM outage)."""


@dataclass
class StageRequest:
    """One logical staging request (possibly shared by several callers)."""

    name: str
    ready: Event
    requested_at: float
    completed_at: Optional[float] = None
    waiters: int = 1
    id: int = field(default_factory=itertools.count(1).__next__)

    @property
    def stage_time(self) -> Optional[float]:
        """Wall-clock staging duration, once complete."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.requested_at


class HierarchicalResourceManager:
    """Stages tape-resident files to disk ahead of WAN transfer."""

    def __init__(self, env: Environment, mss: MassStorageSystem,
                 serve_fs: FileSystem, name: str = "hrm", obs=None):
        self.env = env
        self.mss = mss
        self.serve_fs = serve_fs
        self.name = name
        self.obs = obs          # optional repro.obs.Observability bundle
        self._inflight: Dict[str, StageRequest] = {}
        self.completed: list = []  # history of StageRequest
        self.down = False
        self.stage_failures = 0

    def _event(self, name: str, **fields) -> None:
        if self.obs is not None:
            self.obs.event(name, host=self.name, prog="hrm", **fields)

    # -- fault injection -----------------------------------------------------
    def fail_staging(self) -> None:
        """Tape/HRM failure: abort in-flight stages, refuse new ones."""
        if self.down:
            return
        self.down = True
        self._event("hrm.down", inflight=len(self._inflight))
        for req in list(self._inflight.values()):
            self._inflight.pop(req.name, None)
            self.stage_failures += 1
            self._event("hrm.stage.failed", file=req.name,
                        reason="hrm outage")
            if self.obs is not None:
                self.obs.count("hrm.stages_total", outcome="failed")
            if not req.ready.triggered:
                req.ready.fail(StagingError(
                    f"{self.name}: staging failed for {req.name!r}"))

    def restore(self) -> None:
        """The HRM is healthy again; new stage requests are accepted."""
        if self.down:
            self._event("hrm.restored")
        self.down = False

    # -- staging -------------------------------------------------------------
    def request_stage(self, name: str) -> StageRequest:
        """Ask for ``name`` to become disk-resident.

        Returns a :class:`StageRequest`; wait on ``request.ready``. If the
        same file is already being staged, the existing request is shared.
        """
        existing = self._inflight.get(name)
        if existing is not None:
            existing.waiters += 1
            return existing
        req = StageRequest(name, Event(self.env), self.env.now)
        self._event("hrm.stage.request", file=name)
        if self.down:
            self.stage_failures += 1
            self._event("hrm.stage.failed", file=name, reason="hrm down")
            if self.obs is not None:
                self.obs.count("hrm.stages_total", outcome="failed")
            req.ready.fail(StagingError(
                f"{self.name}: HRM is down, cannot stage {name!r}"))
            return req
        if self.serve_fs.exists(name) and self.mss.is_staged(name):
            # Already disk-resident: complete immediately.
            req.completed_at = self.env.now
            self.mss.cache.pin(name)
            req.ready.succeed(self.serve_fs.stat(name))
            self.completed.append(req)
            self._record_done(req, cached=True)
            return req
        self._inflight[name] = req
        self.env.process(self._stage(req))
        return req

    def _stage(self, req: StageRequest):
        try:
            file = yield from self.mss.retrieve(req.name)
        except Exception as exc:
            self._inflight.pop(req.name, None)
            self._event("hrm.stage.failed", file=req.name,
                        reason=str(exc))
            if self.obs is not None:
                self.obs.count("hrm.stages_total", outcome="failed")
            if not req.ready.triggered:
                req.ready.fail(exc)
            return
        if req.ready.triggered:
            # fail_staging() already failed this request mid-retrieve.
            return
        self.mss.cache.pin(req.name)
        if not self.serve_fs.exists(req.name):
            self.serve_fs.store(file)
        req.completed_at = self.env.now
        self._inflight.pop(req.name, None)
        self.completed.append(req)
        self._record_done(req)
        req.ready.succeed(file)

    def _record_done(self, req: StageRequest, cached: bool = False) -> None:
        """``hrm.stage.done`` lifeline milestone + staging metrics."""
        seconds = req.stage_time or 0.0
        self._event("hrm.stage.done", file=req.name,
                    seconds=f"{seconds:.3f}",
                    cached="1" if cached else "0")
        if self.obs is not None:
            outcome = "cached" if cached else "staged"
            self.obs.count("hrm.stages_total", outcome=outcome)
            self.obs.observe("hrm.stage_seconds", seconds)

    def release(self, name: str) -> None:
        """Signal that a transfer referencing ``name`` has finished."""
        if self.mss.cache.is_pinned(name):
            self.mss.cache.unpin(name)

    # -- queries -------------------------------------------------------------------
    def is_staged(self, name: str) -> bool:
        """True if the file is already on the serving disk."""
        return self.serve_fs.exists(name) and self.mss.is_staged(name)

    def estimate_wait(self, name: str) -> float:
        """Rough time until ``name`` could be disk-resident."""
        if self.down:
            return float("inf")
        if self.is_staged(name):
            return 0.0
        queued = self.mss.tape.queue_length
        per_item = self.mss.tape.spec.mount_time + self.mss.tape.spec.max_seek_time / 2
        return self.mss.estimate_retrieve_time(name) + queued * per_item

    @property
    def inflight(self) -> int:
        """Number of distinct files currently being staged."""
        return len(self._inflight)

    def __repr__(self) -> str:
        return (f"HierarchicalResourceManager({self.name!r}, "
                f"{self.inflight} staging, {len(self.completed)} done)")
