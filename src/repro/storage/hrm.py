"""The Hierarchical Resource Manager (HRM).

Paper §4: "HRM is a component that sits in front of the MSS (in this case
an HPSS system at LBNL) and stages files from the MSS to its local disk
cache. After this action is complete, the RM uses GridFTP to move the
file securely over the wide-area network to its destination."

The HRM here:

- accepts stage requests and deduplicates concurrent requests for the
  same file (one tape read serves all waiters),
- publishes staged files into the host filesystem GridFTP serves from,
  and exposes the live staged-byte watermark
  (:attr:`StageRequest.progress`) so the GridFTP server can start a
  cut-through transfer at a fractional watermark instead of waiting for
  the whole file,
- pins staged files in the MSS cache **once per waiter** while transfers
  reference them; each :meth:`release` balances exactly one pin,
- prefetches hinted dataset siblings (:meth:`hint_dataset`) during idle
  drive time, in cartridge/seek order, behind the cache's prefetch
  admission policy — speculation never evicts pinned or demand data and
  never delays demand tape reads (prefetch runs at lower tape priority).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.data.digest import add_mark
from repro.sim.core import Environment
from repro.sim.events import Event
from repro.storage.filesystem import FileSystem
from repro.storage.hpss import MassStorageSystem
from repro.storage.tape import PRIORITY_DEMAND, PRIORITY_PREFETCH, \
    StageProgress


class StagingError(Exception):
    """A stage request failed (tape drive / HRM outage)."""


@dataclass
class StageRequest:
    """One logical staging request (possibly shared by several callers).

    ``id`` is assigned from the environment's per-run counter
    (``env.next_id``) so logged ids are a function of the run, not of
    how many HRMs the process created before this one.
    """

    name: str
    ready: Event
    requested_at: float
    completed_at: Optional[float] = None
    waiters: int = 1
    id: int = 0
    prefetch: bool = False
    size: float = 0.0
    progress: Optional[StageProgress] = None

    @property
    def stage_time(self) -> Optional[float]:
        """Wall-clock staging duration, once complete."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.requested_at


class HierarchicalResourceManager:
    """Stages tape-resident files to disk ahead of WAN transfer."""

    def __init__(self, env: Environment, mss: MassStorageSystem,
                 serve_fs: FileSystem, name: str = "hrm", obs=None,
                 prefetch: bool = True):
        self.env = env
        self.mss = mss
        self.serve_fs = serve_fs
        self.name = name
        self.obs = obs          # optional repro.obs.Observability bundle
        self.prefetch_enabled = prefetch
        self._inflight: Dict[str, StageRequest] = {}
        self._hinted: Dict[str, bool] = {}  # insertion-ordered name set
        self.completed: list = []  # history of StageRequest
        self.down = False
        self.truncating = False
        self.truncated_stages = 0
        self.stage_failures = 0
        self.prefetch_issued = 0
        self.prefetch_hits = 0
        self.prefetch_aborted = 0
        self.prefetch_skipped = 0

    def _event(self, name: str, **fields) -> None:
        if self.obs is not None:
            self.obs.event(name, host=self.name, prog="hrm", **fields)

    # -- fault injection -----------------------------------------------------
    def fail_staging(self) -> None:
        """Tape/HRM failure: abort in-flight stages, refuse new ones."""
        if self.down:
            return
        self.down = True
        self._event("hrm.down", inflight=len(self._inflight))
        for req in list(self._inflight.values()):
            self._inflight.pop(req.name, None)
            if req.prefetch:
                self.prefetch_aborted += 1
                self._event("hrm.prefetch.abort", file=req.name,
                            reason="hrm outage")
                continue
            self.stage_failures += 1
            self._event("hrm.stage.failed", file=req.name,
                        reason="hrm outage")
            if self.obs is not None:
                self.obs.count("hrm.stages_total", outcome="failed")
            if not req.ready.triggered:
                req.ready.fail(StagingError(
                    f"{self.name}: staging failed for {req.name!r}"))

    def restore(self) -> None:
        """The HRM is healthy again; new stage requests are accepted."""
        if self.down:
            self._event("hrm.restored")
        self.down = False

    def begin_truncating(self) -> None:
        """Integrity fault: stages completing from now on publish a
        silently damaged (short) copy to the serving disk."""
        self.truncating = True
        self._event("hrm.truncating.begin")

    def end_truncating(self) -> None:
        """The staging path is healthy again."""
        self.truncating = False
        self._event("hrm.truncating.end")

    # -- staging -------------------------------------------------------------
    def request_stage(self, name: str) -> StageRequest:
        """Ask for ``name`` to become disk-resident.

        Returns a :class:`StageRequest`; wait on ``request.ready``. If the
        same file is already being staged (or prefetched), the existing
        request is shared — every sharer is one *waiter*, and the staged
        file is pinned once per waiter on completion.
        """
        existing = self._inflight.get(name)
        if existing is not None:
            existing.waiters += 1
            if existing.prefetch:
                # Demand caught up with an in-flight prefetch: the tape
                # read already has a head start.
                existing.prefetch = False
                self._count_prefetch_hit(name, inflight=True)
            return existing
        req = StageRequest(name, Event(self.env), self.env.now,
                           id=self.env.next_id("hrm.stage"))
        self._event("hrm.stage.request", file=name)
        if self.down:
            self.stage_failures += 1
            self._event("hrm.stage.failed", file=name, reason="hrm down")
            if self.obs is not None:
                self.obs.count("hrm.stages_total", outcome="failed")
            req.ready.fail(StagingError(
                f"{self.name}: HRM is down, cannot stage {name!r}"))
            return req
        if self.serve_fs.exists(name) and self.mss.is_staged(name):
            # Already disk-resident: complete immediately (one pin for
            # this caller; pin() promotes a prefetched entry to demand).
            was_prefetched = self.mss.cache.kind(name) == "prefetch"
            req.completed_at = self.env.now
            self.mss.cache.pin(name)
            if was_prefetched:
                self._count_prefetch_hit(name, inflight=False)
            req.ready.succeed(self.serve_fs.stat(name))
            self.completed.append(req)
            self._record_done(req, cached=True)
            return req
        if self.mss.tape.has(name) and not self.mss.is_staged(name):
            req.size = self.mss.tape.lookup(name).size
            req.progress = StageProgress(self.env, req.size)
        self._inflight[name] = req
        self.env.process(self._stage(req))
        return req

    def _stage(self, req: StageRequest):
        try:
            file = yield from self.mss.retrieve(
                req.name,
                priority=(PRIORITY_PREFETCH if req.prefetch
                          else PRIORITY_DEMAND),
                kind="prefetch" if req.prefetch else "demand",
                progress=req.progress)
        except Exception as exc:
            self._inflight.pop(req.name, None)
            if req.prefetch:
                # Nobody is waiting: note it and move on.
                self.prefetch_aborted += 1
                self._event("hrm.prefetch.abort", file=req.name,
                            reason=str(exc))
                self._maybe_prefetch()
                return
            self._event("hrm.stage.failed", file=req.name,
                        reason=str(exc))
            if self.obs is not None:
                self.obs.count("hrm.stages_total", outcome="failed")
            if not req.ready.triggered:
                req.ready.fail(exc)
            return
        if req.ready.triggered:
            # fail_staging() already failed this request mid-retrieve.
            return
        if self.truncating and not self.serve_fs.exists(req.name):
            # Integrity fault: publish (and hand waiters) a damaged COPY
            # — never mark the retrieved object itself, because the tape
            # archive and the disk cache share that FileObject and the
            # archival copy must stay pristine.
            file = file.with_name(file.name)
            add_mark(file, f"truncated@{self.env.now:.0f}")
            self.truncated_stages += 1
            self._event("hrm.stage.truncated", file=req.name)
            if self.obs is not None:
                self.obs.count("hrm.truncated_stages_total")
        # One pin per waiter: N concurrent transfers of this file each
        # release() once, and the last release leaves it evictable.
        # A pure prefetch (waiters == 0) lands unpinned.
        for _ in range(req.waiters):
            self.mss.cache.pin(req.name)
        if not self.serve_fs.exists(req.name):
            self.serve_fs.store(file)
        req.completed_at = self.env.now
        self._inflight.pop(req.name, None)
        self.completed.append(req)
        self._record_done(req)
        req.ready.succeed(file)
        # The tape drive just freed up: speculate if there is slack.
        self._maybe_prefetch()

    def _record_done(self, req: StageRequest, cached: bool = False) -> None:
        """``hrm.stage.done`` lifeline milestone + staging metrics."""
        seconds = req.stage_time or 0.0
        self._event("hrm.stage.done", file=req.name,
                    seconds=f"{seconds:.3f}",
                    cached="1" if cached else "0",
                    prefetch="1" if req.prefetch else "0")
        if self.obs is not None:
            if cached:
                outcome = "cached"
            elif req.prefetch:
                outcome = "prefetched"
            else:
                outcome = "staged"
            self.obs.count("hrm.stages_total", outcome=outcome)
            self.obs.observe("hrm.stage_seconds", seconds)

    def _count_prefetch_hit(self, name: str, inflight: bool) -> None:
        self.prefetch_hits += 1
        self._event("hrm.prefetch.hit", file=name,
                    inflight="1" if inflight else "0")
        if self.obs is not None:
            self.obs.count("hrm.prefetch_hits_total",
                           kind="inflight" if inflight else "staged")

    def release(self, name: str) -> None:
        """Signal that a transfer referencing ``name`` has finished.

        Balances exactly one pin; a release for a file this HRM never
        pinned (or whose pins are all balanced) is a no-op.
        """
        if self.mss.cache.is_pinned(name):
            self.mss.cache.unpin(name)

    def abandon(self, name: str) -> None:
        """A caller that shared a stage request gave up mid-transfer.

        If the stage is still in flight, its pending waiter slot is
        surrendered (one fewer pin will be taken at completion);
        otherwise this balances the pin like :meth:`release`.
        """
        req = self._inflight.get(name)
        if req is not None and req.waiters > 0:
            req.waiters -= 1
            return
        self.release(name)

    # -- prefetch ------------------------------------------------------------
    def hint_dataset(self, names: Iterable[str]) -> None:
        """RM hint: the requesting ticket's full logical-file list.

        Tape-resident, not-yet-staged siblings become prefetch
        candidates; they are staged during idle drive time in
        cartridge/seek order.
        """
        if not self.prefetch_enabled or self.down:
            return
        for name in names:
            if name in self._hinted:
                continue
            if not self.mss.tape.has(name):
                continue
            self._hinted[name] = True
        self._maybe_prefetch()

    def _maybe_prefetch(self) -> None:
        """Issue prefetch stages while drives are idle and the cache
        admits them. Event-driven: called on hints and stage completions,
        never on a timer."""
        if not self.prefetch_enabled or self.down:
            return
        tape = self.mss.tape
        while tape.queue_length == 0:
            active = sum(1 for r in self._inflight.values() if r.prefetch)
            if active >= tape.idle_drive_count:
                return
            name = self._pick_prefetch()
            if name is None:
                return
            size = tape.lookup(name).size
            if not self.mss.cache.can_admit_prefetch(size):
                # Leave the candidate hinted; retry when cache churn
                # frees prefetch budget (next completion re-enters here).
                self.prefetch_skipped += 1
                return
            self._hinted.pop(name, None)
            req = StageRequest(name, Event(self.env), self.env.now,
                               waiters=0, prefetch=True, size=size,
                               id=self.env.next_id("hrm.stage"))
            req.progress = StageProgress(self.env, size)
            req.ready.defuse()  # nobody waits on a speculative stage
            self._inflight[name] = req
            self.prefetch_issued += 1
            self._event("hrm.prefetch.start", file=name)
            if self.obs is not None:
                self.obs.count("hrm.prefetches_total")
            self.env.process(self._stage(req))

    def _pick_prefetch(self) -> Optional[str]:
        """Next candidate in cartridge/seek order, preferring cartridges
        already loaded in a drive (free mounts first)."""
        tape = self.mss.tape
        loaded = [d.loaded_tape for d in tape.drives
                  if d.loaded_tape is not None]
        best = None
        best_key = None
        stale = []
        for name in self._hinted:
            if name in self._inflight:
                continue
            if self.mss.cache.kind(name) is not None:
                stale.append(name)  # already resident: no longer a candidate
                continue
            cart, position = tape.placement(name)
            key = (0 if cart in loaded else 1, cart, position, name)
            if best_key is None or key < best_key:
                best, best_key = name, key
        for name in stale:
            self._hinted.pop(name, None)
        return best

    # -- queries -------------------------------------------------------------------
    def is_staged(self, name: str) -> bool:
        """True if the file is already on the serving disk."""
        return self.serve_fs.exists(name) and self.mss.is_staged(name)

    def estimate_wait(self, name: str) -> float:
        """Rough time until ``name`` could be disk-resident.

        Staged (including already-prefetched) files cost nothing; a file
        whose stage is in flight costs the remaining stream time; a cold
        file costs the optimistic tape estimate plus the current tape
        queue depth.
        """
        if self.down:
            return float("inf")
        if self.is_staged(name):
            return 0.0
        spec = self.mss.tape.spec
        req = self._inflight.get(name)
        if req is not None:
            progress = req.progress
            if progress is not None and progress.stream_started_at is not None:
                remaining = progress.total - progress.staged_bytes()
                return remaining / spec.read_rate
            # Queued or still winding: mount+seek+stream, but no
            # re-queueing penalty — the job already holds its place.
            return self.mss.estimate_retrieve_time(name) + spec.mount_time
        queued = self.mss.tape.queue_length
        per_item = spec.mount_time + spec.max_seek_time / 2
        return self.mss.estimate_retrieve_time(name) + queued * per_item

    @property
    def inflight(self) -> int:
        """Number of distinct files currently being staged."""
        return len(self._inflight)

    def __repr__(self) -> str:
        return (f"HierarchicalResourceManager({self.name!r}, "
                f"{self.inflight} staging, {len(self.completed)} done)")
