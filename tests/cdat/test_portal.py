"""Tests for the ESG-II lightweight portal client and DODS access."""

import numpy as np
import pytest

from repro.data import GridSpec
from repro.scenarios import EsgTestbed


def make_testbed():
    tb = EsgTestbed(seed=6, materialize=True,
                    grid=GridSpec(nlat=16, nlon=32, months=12))
    tb.warm_nws(90.0)
    return tb


def test_portal_subset_ships_less():
    tb = make_testbed()

    def main():
        return (yield from tb.portal.request(
            "pcmdi.ncar_csm.run1", "tas", operation="subset",
            months=(1, 1), lat=(-30.0, 30.0)))

    resp = tb.run_process(main())
    assert resp.bytes_shipped < resp.full_bytes / 3
    assert resp.reduction > 3
    assert resp.dataset["tas"].shape[0] == 1
    assert float(np.abs(resp.dataset.coords["lat"]).max()) <= 30.0
    assert resp.source_hostname in tb.registry


def test_portal_merges_multiple_months():
    tb = make_testbed()

    def main():
        return (yield from tb.portal.request(
            "pcmdi.ncar_csm.run1", "tas", operation="subset",
            months=(1, 3), lat=(-10.0, 10.0)))

    resp = tb.run_process(main())
    assert resp.dataset["tas"].shape[0] == 3  # concatenated along time


def test_portal_extract_variable():
    tb = make_testbed()

    def main():
        return (yield from tb.portal.request(
            "pcmdi.ncar_csm.run1", "pr", operation="extract",
            months=(6, 6)))

    resp = tb.run_process(main())
    assert set(resp.dataset.variables) == {"pr"}
    assert resp.reduction > 2  # dropped 2 of 3 variables


def test_portal_time_mean_is_tiny():
    tb = make_testbed()

    def main():
        return (yield from tb.portal.request(
            "pcmdi.ncar_csm.run1", "tas", operation="time_mean",
            months=(1, 1)))

    resp = tb.run_process(main())
    assert resp.dataset["tas"].dims == ("lat", "lon")
    assert resp.bytes_shipped < resp.full_bytes


def test_portal_empty_selection_raises():
    tb = make_testbed()

    def main():
        with pytest.raises(Exception):
            yield from tb.portal.request("pcmdi.ncar_csm.run1", "tas",
                                         years=(1890, 1891))
        yield tb.env.timeout(0)

    tb.run_process(main())


def test_portal_counts_requests():
    tb = make_testbed()

    def main():
        yield from tb.portal.request("pcmdi.ncar_csm.run1", "tas",
                                     operation="time_mean", months=(1, 1))
        yield from tb.portal.request("pcmdi.ncar_csm.run1", "clt",
                                     operation="extract", months=(2, 2))

    tb.run_process(main())
    assert tb.portal.requests_served == 2


def test_dods_access_to_esg_archive():
    """§9: 'access via DODS protocols and mechanisms' over the same
    files the grid serves."""
    tb = make_testbed()
    servers, dods = tb.enable_dods()
    assert len(servers) == 7
    anl_files = [f.name for f in tb.sites["anl"].fs]
    assert anl_files

    def main():
        ds = yield from dods.open_dataset(
            tb.client_host, "dods.anl.gov", anl_files[0], "tas",
            lat=(-45.0, 45.0))
        return ds

    ds = tb.run_process(main())
    assert "tas" in ds
    assert float(np.abs(ds.coords["lat"]).max()) <= 45.0


def test_portal_and_heavyweight_agree():
    """The subset the portal ships equals the subset computed locally
    after a full heavyweight fetch."""
    tb = make_testbed()

    def portal_path():
        return (yield from tb.portal.request(
            "pcmdi.ncar_csm.run1", "tas", operation="subset",
            months=(2, 2), lat=(-20.0, 20.0)))

    portal_resp = tb.run_process(portal_path())

    def heavy_path():
        return (yield from tb.cdat.fetch("pcmdi.ncar_csm.run1", "tas",
                                         months=(2, 2)))

    heavy = tb.run_process(heavy_path())
    local_subset = heavy.dataset.subset("tas", lat=(-20.0, 20.0))
    np.testing.assert_allclose(portal_resp.dataset["tas"].data,
                               local_subset["tas"].data, rtol=1e-12)
