"""Edge-path tests for the CDAT client facade."""

import pytest

from repro.data import DataError, GridSpec
from repro.scenarios import EsgTestbed


def make_tb(**kw):
    defaults = dict(seed=19, grid=GridSpec(nlat=12, nlon=24, months=12))
    defaults.update(kw)
    tb = EsgTestbed(**defaults)
    tb.warm_nws(60.0)
    return tb


def test_fetch_empty_selection_raises():
    tb = make_tb(materialize=True)

    def main():
        with pytest.raises(DataError, match="matched no files"):
            yield from tb.cdat.fetch("pcmdi.ncar_csm.run1", "tas",
                                     years=(1800, 1801))
        yield tb.env.timeout(0)

    tb.run_process(main())


def test_fetch_synthetic_archive_requires_flag():
    """Size-only archives deliver no bytes to decode: the client says so
    unless told transfer-behaviour-only is fine."""
    tb = make_tb(materialize=False)

    def strict():
        with pytest.raises(DataError, match="without content"):
            yield from tb.cdat.fetch("pcmdi.ncar_csm.run1", "tas",
                                     months=(1, 1))
        yield tb.env.timeout(0)

    tb.run_process(strict())

    def relaxed():
        result = yield from tb.cdat.fetch(
            "pcmdi.ncar_csm.run1", "tas", months=(1, 1),
            require_content=False)
        return result

    result = tb.run_process(relaxed())
    assert result.dataset is None
    assert result.ticket.complete
    assert len(result.logical_files) == 1


def test_fetch_reports_failed_files():
    tb = make_tb(materialize=True)
    ds = "pcmdi.ncar_csm.run1"
    # Corrupt the catalog: register a file that exists nowhere.
    tb.replica_catalog.add_file_to_location(ds, "anl", "ghost.nc")
    tb.metadata_catalog.register_files(ds, [{
        "logical_name": "ghost.nc", "size": 1000,
        "year": 1995, "month_range": (1, 1), "variables": ("tas",)}])
    # Remove it from anl's actual filesystem claim... it was never there.

    def main():
        with pytest.raises(DataError, match="failed"):
            yield from tb.cdat.fetch(ds, "tas", months=(1, 1))
        yield tb.env.timeout(0)

    # The ghost file's only "replica" 550s at transfer time.
    tb.run_process(main())


def test_browse_matches_catalog():
    tb = make_tb()
    listing = tb.cdat.browse()
    assert {e["dataset"] for e in listing} == set(tb.dataset_ids())
    for entry in listing:
        assert entry["files"] == 12
