"""Tests for PGM/PPM image output."""

import numpy as np
import pytest

from repro.cdat import decode_pnm_header, field_to_pgm, field_to_ppm
from repro.data import ClimateModelRun, GridSpec


def test_pgm_structure():
    field = np.linspace(0, 1, 12).reshape(3, 4)
    blob = field_to_pgm(field)
    magic, w, h = decode_pnm_header(blob)
    assert (magic, w, h) == ("P5", 4, 3)
    header_len = blob.index(b"255\n") + 4
    assert len(blob) - header_len == 12  # one byte per pixel


def test_ppm_structure():
    field = np.linspace(0, 1, 12).reshape(3, 4)
    blob = field_to_ppm(field)
    magic, w, h = decode_pnm_header(blob)
    assert (magic, w, h) == ("P6", 4, 3)
    header_len = blob.index(b"255\n") + 4
    assert len(blob) - header_len == 36  # three bytes per pixel


def test_pgm_value_mapping():
    field = np.array([[0.0, 100.0]])
    blob = field_to_pgm(field)
    pixels = blob[blob.index(b"255\n") + 4:]
    assert pixels == bytes([0, 255])


def test_explicit_range_clips():
    field = np.array([[-10.0, 5.0, 20.0]])
    blob = field_to_pgm(field, vmin=0.0, vmax=10.0)
    pixels = blob[blob.index(b"255\n") + 4:]
    assert pixels[0] == 0      # clipped low
    assert pixels[1] == 127    # midpoint
    assert pixels[2] == 255    # clipped high


def test_north_up_flip():
    field = np.array([[0.0, 0.0], [100.0, 100.0]])  # north row = hot
    blob = field_to_pgm(field)  # default: flip so north is the top row
    pixels = blob[blob.index(b"255\n") + 4:]
    assert pixels[:2] == bytes([255, 255])
    unflipped = field_to_pgm(field, flip_north_up=False)
    pixels2 = unflipped[unflipped.index(b"255\n") + 4:]
    assert pixels2[:2] == bytes([0, 0])


def test_constant_field_is_black():
    blob = field_to_pgm(np.full((2, 2), 5.0))
    pixels = blob[blob.index(b"255\n") + 4:]
    assert pixels == bytes(4)


def test_diverging_colormap_endpoints():
    field = np.array([[0.0, 0.5, 1.0]])
    blob = field_to_ppm(field)
    pixels = blob[blob.index(b"255\n") + 4:]
    r0, g0, b0 = pixels[0:3]     # cold end: blue
    rm, gm, bm = pixels[3:6]     # middle: near white
    r1, g1, b1 = pixels[6:9]     # hot end: red
    assert b0 == 255 and r0 == 0
    assert r1 == 255 and b1 == 0
    assert min(rm, gm, bm) > 180


def test_rejects_non_2d():
    with pytest.raises(ValueError):
        field_to_pgm(np.zeros(5))
    with pytest.raises(ValueError):
        field_to_ppm(np.zeros((2, 2, 2)))
    with pytest.raises(ValueError):
        decode_pnm_header(b"JUNK")


def test_real_field_renders(tmp_path):
    run = ClimateModelRun(grid=GridSpec(32, 64, 12))
    ds = run.generate_year(1995)
    field = ds["tas"].data.mean(axis=0)
    ppm = field_to_ppm(field)
    out = tmp_path / "tas.ppm"
    out.write_bytes(ppm)
    magic, w, h = decode_pnm_header(out.read_bytes())
    assert (magic, w, h) == ("P6", 64, 32)
