"""Tests for CDAT analysis primitives."""

import numpy as np
import pytest

from repro.cdat import (
    anomaly,
    concat_time,
    global_mean_series,
    seasonal_cycle,
    time_mean,
    zonal_mean,
)
from repro.cdat.analysis import area_weights
from repro.data import ClimateModelRun, DataError, Dataset, GridSpec, Variable


def run():
    return ClimateModelRun(grid=GridSpec(nlat=16, nlon=32, months=12),
                           start_year=1995, seed=4)


def small(nt=4, nlat=3, nlon=4, fill=None):
    ds = Dataset("s")
    ds.add_coord("time", np.arange(nt, dtype=float))
    ds.add_coord("lat", np.linspace(-60, 60, nlat))
    ds.add_coord("lon", np.linspace(0, 270, nlon))
    data = (np.arange(nt * nlat * nlon, dtype=float)
            .reshape(nt, nlat, nlon) if fill is None
            else np.full((nt, nlat, nlon), float(fill)))
    ds.add_variable(Variable("v", ("time", "lat", "lon"), data))
    return ds


def test_time_mean_shape_and_value():
    ds = small(fill=7.0)
    tm = time_mean(ds, "v")
    assert tm.shape == (3, 4)
    assert np.allclose(tm, 7.0)


def test_zonal_mean_shape():
    ds = small()
    zm = zonal_mean(ds, "v")
    assert zm.shape == (3,)


def test_wrong_dims_rejected():
    ds = Dataset("bad")
    ds.add_coord("time", [0.0, 1.0])
    ds.add_variable(Variable("v", ("time",), np.zeros(2)))
    with pytest.raises(DataError):
        time_mean(ds, "v")


def test_area_weights_normalized_and_equator_heavy():
    ds = small()
    w = area_weights(ds)
    assert w.sum() == pytest.approx(1.0)
    assert w[1] > w[0]  # equator band outweighs 60° bands


def test_global_mean_series_constant_field():
    ds = small(fill=3.0)
    gm = global_mean_series(ds, "v")
    assert gm.shape == (4,)
    assert np.allclose(gm, 3.0)


def test_anomaly_zero_mean():
    ds = small()
    an = anomaly(ds, "v")
    assert an.shape == ds["v"].shape
    assert np.allclose(an.mean(axis=0), 0.0, atol=1e-9)


def test_seasonal_cycle_requires_whole_years():
    ds = small(nt=13)
    with pytest.raises(DataError):
        seasonal_cycle(ds, "v")
    ok = small(nt=24)
    cyc = seasonal_cycle(ok, "v")
    assert cyc.shape == (12, 3, 4)


def test_seasonal_cycle_recovers_synthetic_cycle():
    ds = run().generate_year(1995)
    cyc = seasonal_cycle(ds, "tas")
    lat = ds.coords["lat"]
    north = lat > 30
    # July (index 6) warmer than January (index 0) in the NH climatology.
    assert cyc[6][north].mean() > cyc[0][north].mean()


def test_concat_time_stacks():
    r = run()
    ds95 = r.generate_months(1995, 1, 6, variables=("tas",))
    ds95b = r.generate_months(1995, 7, 12, variables=("tas",))
    merged = concat_time([ds95, ds95b], "tas")
    assert merged["tas"].shape[0] == 12
    full = r.generate_year(1995, variables=("tas",))
    np.testing.assert_array_equal(merged["tas"].data, full["tas"].data)


def test_concat_time_grid_mismatch_rejected():
    a = small(nlat=3)
    b = small(nlat=3)
    b.coords["lat"] = b.coords["lat"] + 1.0
    with pytest.raises(DataError):
        concat_time([a, b], "v")
    with pytest.raises(DataError):
        concat_time([], "v")


def test_generate_months_validation():
    r = run()
    with pytest.raises(ValueError):
        r.generate_months(1995, 0, 3)
    with pytest.raises(ValueError):
        r.generate_months(1995, 5, 3)
    with pytest.raises(ValueError):
        r.generate_months(1995, 1, 13)
