"""Tests for the dataset-series aggregation view (portal.open_series).

One logical request fans out across a dataset's file series at the best
replicas and comes back as a single time-concatenated dataset — the
caller never sees file boundaries.
"""

import numpy as np
import pytest

from repro.data import GridSpec
from repro.scenarios import EsgTestbed

CHUNKS = {"time": 1, "lat": 8, "lon": 16}
DATASET = "pcmdi.ncar_csm.run1"


def make_testbed(seed=6):
    tb = EsgTestbed(seed=seed, materialize=True,
                    grid=GridSpec(nlat=16, nlon=32, months=12),
                    sdbf_chunks=CHUNKS)
    tb.warm_nws(90.0)
    return tb


def open_series(tb, dataset_id=DATASET):
    def main():
        return (yield from tb.portal.open_series(dataset_id))
    return tb.run_process(main())


def test_open_series_resolves_the_record():
    tb = make_testbed()
    series = open_series(tb)
    assert series.dataset_id == DATASET
    assert "tas" in series.variables
    lo, hi = series.time_extent
    assert lo <= hi


def test_open_series_unknown_dataset_raises():
    from repro.metadata import MetadataError
    tb = make_testbed()

    def main():
        with pytest.raises(MetadataError):
            yield from tb.portal.open_series("no.such.dataset")
        yield tb.env.timeout(0)

    tb.run_process(main())


def test_series_fetch_concatenates_in_file_order():
    tb = make_testbed()
    series = open_series(tb)
    lo, _hi = series.time_extent

    def main():
        return (yield from series.fetch("tas", operation="subset",
                                        years=(lo, lo),
                                        lat=(-30.0, 30.0)))

    resp = tb.run_process(main())
    assert resp.files > 1                       # really fanned out
    assert resp.dataset["tas"].shape[0] == 12   # a full year of months
    time = resp.dataset.coords["time"]
    assert np.all(np.diff(time) > 0)            # merged in time order
    assert resp.bytes_shipped < resp.full_bytes
    assert resp.server_decoded_bytes > 0
    # Fanned-out products may come from several replica hosts.
    for host in resp.source_hostname.split(","):
        assert host in tb.registry


def test_series_fetch_matches_sequential_request():
    """The aggregation view is a performance feature, not a semantics
    change: its merged dataset equals the sequential portal request."""
    tb = make_testbed()
    series = open_series(tb)
    lo, _ = series.time_extent

    def fanned():
        return (yield from series.fetch("tas", operation="subset",
                                        years=(lo, lo), fanout=4,
                                        lat=(-20.0, 20.0)))

    def sequential():
        return (yield from tb.portal.request(
            DATASET, "tas", operation="subset", years=(lo, lo),
            lat=(-20.0, 20.0)))

    fan = tb.run_process(fanned())
    seq = tb.run_process(sequential())
    np.testing.assert_array_equal(fan.dataset["tas"].data,
                                  seq.dataset["tas"].data)
    np.testing.assert_array_equal(fan.dataset.coords["time"],
                                  seq.dataset.coords["time"])
    assert fan.bytes_shipped == pytest.approx(seq.bytes_shipped)


def test_series_fanout_width_does_not_change_results():
    tb1 = make_testbed()
    s1 = open_series(tb1)
    lo, _ = s1.time_extent
    tb2 = make_testbed()
    s2 = open_series(tb2)

    def run(series, tb, fanout):
        def main():
            return (yield from series.fetch("tas", years=(lo, lo),
                                            fanout=fanout,
                                            lat=(-10.0, 10.0)))
        return tb.run_process(main())

    wide = run(s1, tb1, 4)
    narrow = run(s2, tb2, 1)
    np.testing.assert_array_equal(wide.dataset["tas"].data,
                                  narrow.dataset["tas"].data)
    assert wide.bytes_shipped == pytest.approx(narrow.bytes_shipped)


def test_series_fetch_bad_fanout_rejected():
    tb = make_testbed()
    series = open_series(tb)

    def main():
        with pytest.raises(ValueError):
            yield from series.fetch("tas", fanout=0)
        yield tb.env.timeout(0)

    tb.run_process(main())


def test_series_time_mean_repeat_hits_derived_caches():
    """A reload of the same series plot is answered from the servers'
    derived-product caches: zero new bytes decoded."""
    tb = make_testbed()
    series = open_series(tb)
    lo, _ = series.time_extent

    def fetch():
        return (yield from series.fetch("tas", operation="subset",
                                        years=(lo, lo),
                                        lat=(-30.0, 30.0)))

    cold = tb.run_process(fetch())
    warm = tb.run_process(fetch())
    assert cold.server_decoded_bytes > 0
    assert cold.cache_hits == 0
    assert warm.cache_hits == warm.files == cold.files
    assert warm.server_decoded_bytes == 0.0
    np.testing.assert_array_equal(cold.dataset["tas"].data,
                                  warm.dataset["tas"].data)


def test_series_results_deterministic_across_runs():
    """Same seed, fresh testbed: identical merged bytes and identical
    byte accounting, with the derived caches enabled."""
    def run():
        tb = make_testbed(seed=6)
        series = open_series(tb)
        lo, _ = series.time_extent

        def main():
            return (yield from series.fetch("tas", operation="subset",
                                            years=(lo, lo),
                                            lat=(-30.0, 30.0)))
        return tb.run_process(main())

    a, b = run(), run()
    np.testing.assert_array_equal(a.dataset["tas"].data,
                                  b.dataset["tas"].data)
    assert a.bytes_shipped == b.bytes_shipped
    assert a.server_decoded_bytes == b.server_decoded_bytes
    assert a.seconds == b.seconds
