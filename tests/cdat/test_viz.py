"""Tests for the ASCII visualization layer."""

import numpy as np
import pytest

from repro.cdat import render_field, render_profile, render_timeseries


def test_render_field_dimensions_and_scale():
    field = np.linspace(0, 1, 20 * 40).reshape(20, 40)
    out = render_field(field, title="T", units="K", width=30, height=10)
    lines = out.splitlines()
    assert lines[0] == "T"
    body = lines[1:-1]
    assert len(body) == 10
    assert all(len(row) == 30 for row in body)
    assert "scale:" in lines[-1]
    assert "K" in lines[-1]


def test_render_field_north_up():
    """High values at high latitude index (north) appear in early rows."""
    field = np.zeros((10, 10))
    field[-1, :] = 100.0  # northernmost band hottest
    out = render_field(field, width=10, height=10)
    body = out.splitlines()[:-1]
    assert body[0].count("@") == 10  # top row saturated
    assert "@" not in body[-1]


def test_render_field_constant_input():
    out = render_field(np.full((5, 5), 3.0), width=5, height=5)
    assert "scale: ' '=3.00 .. '@'=3.00" in out


def test_render_field_rejects_non_2d():
    with pytest.raises(ValueError):
        render_field(np.zeros(5))
    with pytest.raises(ValueError):
        render_field(np.zeros((2, 2, 2)))


def test_render_profile():
    lat = np.array([-45.0, 0.0, 45.0])
    values = np.array([1.0, 3.0, 2.0])
    out = render_profile(values, lat, title="zonal", units="K")
    lines = out.splitlines()
    assert lines[0] == "zonal"
    # North at the top: 45.0 first.
    assert lines[1].strip().startswith("45.0")
    # Maximum value (equator) has the longest bar.
    bars = [l.count("#") for l in lines[1:]]
    assert bars[1] == max(bars)


def test_render_profile_shape_mismatch():
    with pytest.raises(ValueError):
        render_profile(np.zeros(3), np.zeros(4))


def test_render_timeseries():
    series = np.sin(np.linspace(0, 2 * np.pi, 50)) + 2
    out = render_timeseries(series, title="gm", height=8)
    lines = out.splitlines()
    assert lines[0] == "gm"
    assert len(lines) == 1 + 8 + 1
    assert "min=" in lines[-1] and "max=" in lines[-1]


def test_render_timeseries_validation():
    with pytest.raises(ValueError):
        render_timeseries(np.zeros((2, 2)))
    with pytest.raises(ValueError):
        render_timeseries(np.array([]))


def test_render_timeseries_width_resampling():
    out = render_timeseries(np.arange(1000.0), height=4, width=20)
    body = out.splitlines()[:-1]
    assert all(len(row) <= 20 for row in body)
