"""Tests for the EsgTestbed wiring and the EarthSystemGrid facade."""

import pytest

from repro.data import GridSpec
from repro.esg import LAYERS, EarthSystemGrid, LayeredArchitecture
from repro.scenarios import EsgTestbed


def small_esg(**kw):
    defaults = dict(seed=2, grid=GridSpec(nlat=16, nlon=32, months=12))
    defaults.update(kw)
    return EsgTestbed(**defaults)


def test_testbed_builds_all_sites():
    tb = small_esg()
    assert set(tb.sites) == {"anl", "lbnl-pdsf", "lbnl-clipper", "ncar",
                             "isi", "sdsc", "llnl"}
    assert len(tb.registry) == 7
    assert tb.sites["lbnl-pdsf"].hrm is not None
    for site in tb.sites.values():
        assert site.hostname in tb.dns


def test_catalogs_populated_consistently():
    tb = small_esg(years=1)
    ids = tb.dataset_ids()
    assert len(ids) == 2
    for ds in ids:
        files = tb.metadata_catalog.resolve(ds, "tas")
        assert len(files) == 12
        coverage = tb.replica_manager.coverage(ds)
        # Every file: tape copy + 2 disk replicas.
        assert all(count == 3 for count in coverage.values())


def test_tape_copies_registered_without_tape_flag():
    tb = small_esg(with_tape=False)
    pdsf = tb.sites["lbnl-pdsf"]
    assert pdsf.hrm is None
    ds = tb.dataset_ids()[0]
    name = tb.metadata_catalog.resolve(ds, "tas")[0]
    assert pdsf.fs.exists(name)


def test_materialize_conflicts_with_override():
    with pytest.raises(ValueError):
        small_esg(materialize=True, file_size_override=100)


def test_materialized_sizes_match_encoded_lengths():
    tb = small_esg(materialize=True)
    ds = tb.dataset_ids()[0]
    name = tb.metadata_catalog.resolve(ds, "tas")[0]
    site_fs = tb.sites["anl"].fs
    if site_fs.exists(name):
        f = site_fs.stat(name)
        assert f.content is not None
        assert f.size == len(f.content)


def test_size_override_applies():
    tb = small_esg(file_size_override=123456.0)
    ds = tb.dataset_ids()[0]
    name = tb.metadata_catalog.resolve(ds, "tas")[0]
    assert tb.replica_catalog.logical_file_size(ds, name) == 123456.0


# -- facade -------------------------------------------------------------------

def test_facade_browse_lists_datasets_and_variables():
    esg = EarthSystemGrid(small_esg(materialize=True))
    listing = esg.browse()
    assert len(listing) == 2
    entry = listing[0]
    assert {"dataset", "model", "variables", "files"} <= set(entry)
    names = {v["name"] for v in entry["variables"]}
    assert names == {"tas", "pr", "clt"}


def test_facade_fetch_and_analyze_end_to_end():
    esg = EarthSystemGrid(small_esg(materialize=True))
    result, viz = esg.fetch_and_analyze("pcmdi.ncar_csm.run1", "tas",
                                        months=(1, 2))
    assert result.dataset["tas"].shape[0] == 2
    assert "time mean" in viz
    assert "scale:" in viz
    profile = esg.zonal_profile(result, "tas")
    assert "zonal mean" in profile
    assert result.transfer_seconds > 0


def test_layer_registry_complete_and_clean():
    esg = EarthSystemGrid(small_esg())
    arch = esg.layers
    for layer in LAYERS:
        assert arch.names(layer), f"layer {layer} empty"
    assert arch.check_dependencies() == []
    assert arch.layer_of("gridftp") == "resource"
    assert arch.layer_of("nws") == "collective"
    assert arch.layer_of("ghost") is None


def test_layer_registry_detects_upward_dependency():
    arch = LayeredArchitecture()
    arch.register("fabric", "disk", object())
    arch.register("collective", "rm", object())
    arch.depends("disk", "rm")  # fabric depending on collective: wrong
    problems = arch.check_dependencies()
    assert len(problems) == 1
    assert "upward" in problems[0]
    with pytest.raises(ValueError):
        arch.register("nonsense", "x", object())


def test_layer_registry_unregistered_dependency():
    arch = LayeredArchitecture()
    arch.depends("a", "b")
    assert "unregistered" in arch.check_dependencies()[0]


def test_replicated_catalog_option():
    """§6.2: the testbed can run its replica catalog on a replicated
    directory; catalog reads survive losing the primary."""
    tb = small_esg(replicated_catalog=True)
    tb.warm_nws(60.0)
    rd = tb.catalog_directory
    assert rd is not None
    assert rd.syncs >= 1
    ds = tb.dataset_ids()[0]
    name = tb.metadata_catalog.resolve(ds, "tas")[0]
    # Reads keep working with the primary marked down.
    rd.health = lambda server: server is not rd.primary
    ticket = tb.request_manager.submit([(ds, name)])
    tb.env.run(until=ticket.done)
    assert ticket.complete and not ticket.failed_files


def test_add_client_attaches_independent_user_site():
    tb = small_esg(file_size_override=4 * 2**20)
    tb.warm_nws(60.0)
    rm2 = tb.add_client("user-site-2")
    assert rm2 is not tb.request_manager
    assert rm2.dest_fs is not tb.client_fs
    ds = tb.dataset_ids()[0]
    name = tb.metadata_catalog.resolve(ds, "tas")[0]
    t1 = tb.request_manager.submit([(ds, name)])
    t2 = rm2.submit([(ds, name)])
    tb.env.run(until=t1.done)
    tb.env.run(until=t2.done)
    assert not t1.failed_files and not t2.failed_files
    assert tb.client_fs.exists(name)
    assert rm2.dest_fs.exists(name)


def test_facade_fetch_with_year_range():
    from repro.esg import EarthSystemGrid
    esg = EarthSystemGrid(small_esg(materialize=True, years=2))
    result, viz = esg.fetch_and_analyze("pcmdi.ncar_csm.run1", "tas",
                                        years=(1996, 1996))
    assert result.dataset["tas"].shape[0] == 12
    assert all(".1996." in n for n in result.logical_files)


def test_add_fleet_groups_users_behind_shared_pops():
    tb = small_esg(file_size_override=2 * 2**20, with_tape=False,
                   aggregation_threshold=2)
    tb.warm_nws(60.0)
    rms = tb.add_fleet(10, users_per_pop=4)
    assert len(rms) == 10
    # ceil(10/4) = 3 PoPs; users in one PoP share host, client, tenant.
    assert len({rm.dest_host for rm in rms}) == 3
    assert len({rm.client for rm in rms}) == 3
    assert rms[0].client is rms[3].client
    assert rms[0].tenant == rms[1].tenant == "pop0"
    assert rms[8].tenant == "pop2"
    # ...but keep private filesystems.
    assert rms[0].dest_fs is not rms[1].dest_fs
    ds = tb.dataset_ids()[0]
    name = tb.metadata_catalog.resolve(ds, "tas")[0]
    tickets = [rm.submit([(ds, name)]) for rm in rms]
    for t in tickets:
        tb.env.run(until=t.done)
    assert all(not t.failed_files for t in tickets)
    assert all(rm.dest_fs.exists(name) for rm in rms)
    # Same-PoP transfers shared the full path, so they aggregated.
    assert tb.network.aggregates_created > 0


def test_add_fleet_validates_arguments():
    tb = small_esg()
    with pytest.raises(ValueError):
        tb.add_fleet(0)
    with pytest.raises(ValueError):
        tb.add_fleet(4, users_per_pop=0)
