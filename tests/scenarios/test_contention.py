"""Sanity coverage for the many-tenant contention scenario.

The full sweep (and the fairness acceptance gate) lives in
``benchmarks/bench_scheduler_fairness.py``; this keeps the scenario
itself — ticket planning, tenant round-robin, latency bookkeeping,
scheduler stats plumbing — under tier-1.
"""

from repro.scenarios import run_contention


def test_contention_small_run_both_modes():
    base = run_contention(8, scheduled=False, seed=3, n_users=4)
    sched = run_contention(8, scheduled=True, seed=3, n_users=4)

    for result in (base, sched):
        assert result.n_tickets == 8
        assert result.failed_files == 0
        assert result.duration > 0 and result.goodput > 0
        # 8 tickets at bulk_every=4 -> 6 small, 2 bulk.
        assert len(result.small_latencies) == 6
        assert len(result.bulk_latencies) == 2
        assert all(lat > 0 for lat in result.small_latencies)
        assert result.p95_small_latency > 0
    # Same workload lands the same bytes either way.
    assert base.total_bytes == sched.total_bytes

    assert base.scheduler_stats is None
    stats = sched.scheduler_stats
    assert stats is not None
    # 6 small (1 file) + 2 bulk (6 files) = 18 admissions, all granted.
    assert stats["admitted"] == 18
    assert stats["granted"] == 18
    assert stats["rejected"] == 0 and stats["withdrawn"] == 0
    assert not stats["waiting"] and not stats["active"]
    assert stats["total_bytes"] == sched.total_bytes


def test_contention_deterministic_per_seed():
    a = run_contention(6, scheduled=True, seed=9, n_users=3)
    b = run_contention(6, scheduled=True, seed=9, n_users=3)
    assert a.duration == b.duration
    assert a.small_latencies == b.small_latencies
    assert a.bulk_latencies == b.bulk_latencies
    assert a.scheduler_stats == b.scheduler_stats
