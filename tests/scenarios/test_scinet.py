"""Tests for the SciNET SC'2000 testbed (Figure 7 / Table 1 machinery)."""

import pytest

from repro.net import gbps, mbps, to_gbps
from repro.scenarios import ScinetTestbed, run_table1_schedule


def small_testbed(**kw):
    defaults = dict(seed=3, n_hosts=4, copies_per_server=2)
    defaults.update(kw)
    return ScinetTestbed(**defaults)


def test_topology_matches_figure7():
    tb = ScinetTestbed(seed=1)
    topo = tb.topology
    # 8 workstations per side with GbE NICs.
    assert len(tb.dallas_hosts) == 8
    assert len(tb.lbl_hosts) == 8
    for h in tb.dallas_hosts + tb.lbl_hosts:
        assert h.spec.nic_rate == gbps(1)
    # Dual-bonded GbE cluster uplinks.
    assert topo.links["bond-dallas:fwd"].capacity == gbps(2)
    # OC-48 WAN.
    assert topo.links["oc48:fwd"].nominal_capacity == gbps(2.5)
    # RTT in the paper's 10–20 ms band.
    rtt = topo.rtt(tb.dallas_hosts[0].node, tb.lbl_hosts[0].node)
    assert 0.010 < rtt < 0.020


def test_wan_path_crosses_bond_and_oc48():
    tb = ScinetTestbed(seed=1)
    path = tb.topology.path(tb.dallas_hosts[0].store_node,
                            tb.lbl_hosts[0].store_node)
    names = [l.name for l in path]
    assert "bond-dallas:fwd" in names
    assert "oc48:fwd" in names
    assert "bond-lbl:rev" in names  # reverse direction of the duplex pair


def test_cpu_is_the_host_bottleneck():
    """§7: 'the CPU was running at near 100% capacity'."""
    tb = ScinetTestbed(seed=1)
    host = tb.dallas_hosts[0]
    assert host.spec.cpu.throughput_cap < host.spec.line_rate
    # With jumbo frames (unavailable at SC'2000) the interrupt share of
    # the per-byte cost nearly vanishes — the text's own counterfactual.
    jumbo = host.spec.cpu.with_jumbo_frames()
    assert jumbo.throughput_cap > 1.15 * host.spec.cpu.throughput_cap


def test_partitions_on_every_server():
    tb = small_testbed()
    for server in tb.servers:
        assert server.fs.exists("partition.dat")
        assert server.fs.stat("partition.dat").size == tb.partition_bytes


def test_schedule_produces_expected_stream_counts():
    tb = small_testbed()
    res = run_table1_schedule(tb, duration=60.0)
    assert res.striped_servers_src == 4
    assert res.max_streams_per_server == 2
    assert res.max_streams_total == 8
    assert res.copies_completed > 0
    assert res.summary.total_bytes > 0


def test_schedule_aggregate_below_capacity():
    tb = small_testbed()
    res = run_table1_schedule(tb, duration=60.0)
    # Never above the OC-48, nor above the hosts' CPU ceilings.
    ceiling = min(gbps(2.5),
                  4 * tb.dallas_hosts[0].spec.cpu.throughput_cap)
    assert res.summary.peak_100ms <= ceiling * 1.01


def test_peak_ordering_holds():
    """peak(0.1 s) >= peak(5 s) >= sustained — the Table 1 structure."""
    tb = ScinetTestbed(seed=7)
    res = run_table1_schedule(tb, duration=300.0)
    s = res.summary
    assert s.peak_100ms >= s.peak_5s >= s.sustained
    # Floor contention makes the gap real (not within a hair).
    assert s.peak_100ms > 1.2 * s.sustained


def test_full_config_lands_in_paper_band():
    """With the paper's configuration, results land in the reproduction
    band: peak ~1.3-1.7 Gb/s, sustained ~0.4-0.7 Gb/s."""
    tb = ScinetTestbed(seed=3)
    res = run_table1_schedule(tb, duration=600.0)
    s = res.summary
    assert 1.2 <= s.peak_100ms_gbps <= 1.8
    assert 0.35 <= to_gbps(s.sustained) <= 0.75
    assert res.max_streams_total == 32


def test_determinism_same_seed():
    a = run_table1_schedule(small_testbed(seed=5), duration=60.0)
    b = run_table1_schedule(small_testbed(seed=5), duration=60.0)
    assert a.summary.total_bytes == pytest.approx(b.summary.total_bytes)
    c = run_table1_schedule(small_testbed(seed=6), duration=60.0)
    assert a.summary.total_bytes != pytest.approx(c.summary.total_bytes)
