"""Seed-stability regression: chaos runs must replay bit-for-bit.

The repo's determinism contract is that every run is a pure function of
the testbed seed (named RNG streams, insertion-ordered scheduling, no
``hash()``-order iteration). The strongest observable of that contract
is the NetLogger lifeline: two runs with the same seed must emit
*identical* ULM event sequences — timestamps, fields, ordering — while
a different seed must visibly diverge. A regression here means some
code path started consuming nondeterministic state (an unnamed RNG,
set iteration, wall clock), which silently breaks replayability of
every experiment in EXPERIMENTS.md.
"""

from repro.net.faults import FaultSchedule
from repro.rm.request import FileState
from repro.rm.resilience import ResiliencePolicy, RetryPolicy
from repro.rm.scheduler import SchedulerConfig
from repro.scenarios.esg import EsgTestbed

MB = 2**20
_TERMINAL = (FileState.DONE, FileState.FAILED, FileState.CANCELLED)


def small_chaos_run(seed: int):
    """A compact chaos-survival run exercising the full stack: faults,
    retries, deadlines, and the shared transfer scheduler."""
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_rounds=2, base_delay=10.0, multiplier=2.0,
                          max_delay=30.0, jitter=0.25),
        breaker_failure_threshold=2, file_deadline=150.0)
    tb = EsgTestbed(seed=seed, with_tape=True,
                    file_size_override=8 * MB, resilience=resilience,
                    scheduler=SchedulerConfig(per_server_cap=2))
    tb.warm_nws(60.0)
    rng = tb.env.rng.stream("chaos.schedule")
    sites = sorted(tb.sites)
    hosts = sorted(tb.registry)
    sched = FaultSchedule()
    site = sites[int(rng.integers(len(sites)))]
    sched.link_outage(f"wan-{site}:fwd", float(rng.uniform(5.0, 60.0)),
                      float(rng.uniform(30.0, 90.0)),
                      description=f"{site} uplink outage")
    sched.server_outage(hosts[int(rng.integers(len(hosts)))],
                        float(rng.uniform(5.0, 60.0)),
                        float(rng.uniform(30.0, 90.0)),
                        description="gridftp daemon crash")
    sched.mds_outage(0.0, float(rng.uniform(20.0, 60.0)), mode="fail",
                     description="MDS outage")
    tb.fault_injector().install(sched)
    ds = tb.dataset_ids()[0]
    requests = [(ds, str(f["logical_name"]))
                for f in tb.datasets[ds][:4]]
    ticket = tb.request_manager.submit(requests)
    tb.env.run(until=tb.env.now + 400.0)
    return tb, ticket


def ulm_sequence(tb) -> list:
    return [r.to_ulm() for r in tb.logger.records]


def test_same_seed_identical_ulm_lifelines():
    tb_a, ticket_a = small_chaos_run(seed=23)
    tb_b, ticket_b = small_chaos_run(seed=23)
    seq_a, seq_b = ulm_sequence(tb_a), ulm_sequence(tb_b)
    assert len(seq_a) > 50  # the run actually did something
    assert seq_a == seq_b
    # And the outcome fingerprint matches record-for-record.
    assert [(f.logical_file, f.state, f.bytes_done, f.finished_at)
            for f in ticket_a.files] == \
        [(f.logical_file, f.state, f.bytes_done, f.finished_at)
         for f in ticket_b.files]
    # Every file reached a terminal state (chaos never wedges a thread).
    assert all(f.state in _TERMINAL for f in ticket_a.files)


def test_different_seed_diverges():
    tb_a, _ = small_chaos_run(seed=23)
    tb_b, _ = small_chaos_run(seed=24)
    assert ulm_sequence(tb_a) != ulm_sequence(tb_b)


def tape_chaos_run(seed: int):
    """A tape/HRM-heavy chaos run: every requested file is forced through
    the PDSF tape archive (disk replicas dropped), cut-through transfers
    are on, prefetch hints fire, and the HRM itself fails mid-stage."""
    from repro.gridftp.protocol import GridFtpConfig
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_rounds=3, base_delay=10.0, multiplier=2.0,
                          max_delay=40.0, jitter=0.25),
        breaker_failure_threshold=3, file_deadline=600.0)
    tb = EsgTestbed(seed=seed, with_tape=True,
                    file_size_override=8 * MB, resilience=resilience,
                    scheduler=SchedulerConfig(per_server_cap=2),
                    config=GridFtpConfig(parallelism=2,
                                         stage_watermark=0.25))
    tb.warm_nws(60.0)
    ds = tb.dataset_ids()[0]
    requests = [(ds, str(f["logical_name"]))
                for f in tb.datasets[ds][:6]]
    # Tape-only routing: the requested files exist nowhere but PDSF.
    for site_name in sorted(tb.sites):
        if site_name == "lbnl-pdsf":
            continue
        for _ds, name in requests:
            try:
                tb.replica_catalog.remove_file_from_location(
                    ds, site_name, name)
            except KeyError:
                pass                  # no replica registered there
    rng = tb.env.rng.stream("chaos.schedule")
    sched = FaultSchedule()
    sched.hrm_outage("hrm-pdsf", float(rng.uniform(30.0, 90.0)),
                     float(rng.uniform(20.0, 60.0)),
                     description="tape subsystem outage")
    sched.link_outage("wan-lbnl-pdsf:fwd", float(rng.uniform(100.0, 200.0)),
                      float(rng.uniform(20.0, 60.0)),
                      description="pdsf uplink outage")
    tb.fault_injector().install(sched)
    ticket = tb.request_manager.submit(requests)
    tb.env.run(until=tb.env.now + 900.0)
    return tb, ticket


def federated_chaos_run(seed: int):
    """A federated-catalog chaos run: sharded catalog with a slow sync
    and a stale-prone client cache, shard outage windows drawn from the
    seeded chaos stream, and deterministically doctored stale entries
    (replicas deleted behind the catalog's back) so verify-on-open
    demotion and re-selection fire mid-run."""
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_rounds=2, base_delay=10.0, multiplier=2.0,
                          max_delay=30.0, jitter=0.25),
        breaker_failure_threshold=2, file_deadline=200.0)
    tb = EsgTestbed(seed=seed, with_tape=False,
                    file_size_override=8 * MB, resilience=resilience,
                    scheduler=SchedulerConfig(per_server_cap=2),
                    catalog_sites=3, catalog_sync_interval=45.0,
                    catalog_cache_ttl=120.0)
    tb.warm_nws(60.0)
    rng = tb.env.rng.stream("chaos.schedule")
    shards = sorted(tb.federation.sites)
    sched = FaultSchedule()
    for _ in range(2):
        shard = shards[int(rng.integers(len(shards)))]
        sched.catalog_outage(float(rng.uniform(5.0, 60.0)),
                             float(rng.uniform(30.0, 90.0)),
                             site=shard,
                             description=f"{shard} catalog shard down")
    tb.fault_injector().install(sched)
    ds = tb.dataset_ids()[0]
    # Deterministically ordered request list (sorted by logical name —
    # the DN ordering of the per-file lifelines).
    names = sorted(str(f["logical_name"]) for f in tb.datasets[ds][:4])
    # Warm the client cache so selection acts on cached entries...
    for name in names:
        tb.run_process(tb.federation.find_replicas(ds, name))
    # ...then doctor staleness behind the catalog's back: two files
    # (chaos-stream choice) lose every fast replica on disk, leaving
    # only a slow-WAN survivor — the RM must demote and re-select.
    slow = {"ncar", "isi", "sdsc", "llnl"}
    for index in sorted({int(rng.integers(len(names)))
                         for _ in range(2)}):
        name = names[index]
        holders = [loc.name
                   for loc in tb.federation.locations(ds)
                   if loc.holds(name)]
        survivor = next(h for h in holders if h in slow)
        for site_name in holders:
            if site_name != survivor:
                tb.sites[site_name].fs.delete(name)
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=tb.env.now + 500.0)
    return tb, ticket


def test_same_seed_identical_federated_chaos_lifelines():
    """The federated catalog (sharded fan-out, async replication,
    stale cache, demotion) joins the determinism contract: chaos runs
    over it must replay bit-for-bit."""
    tb_a, ticket_a = federated_chaos_run(seed=41)
    tb_b, ticket_b = federated_chaos_run(seed=41)
    seq_a, seq_b = ulm_sequence(tb_a), ulm_sequence(tb_b)
    assert len(seq_a) > 50
    assert seq_a == seq_b
    assert [(f.logical_file, f.state, f.bytes_done, f.finished_at)
            for f in ticket_a.files] == \
        [(f.logical_file, f.state, f.bytes_done, f.finished_at)
         for f in ticket_b.files]
    assert all(f.state in _TERMINAL for f in ticket_a.files)
    # The run really exercised the federation: fan-out queries and the
    # demote/re-select loop are on the lifeline, identically.
    events_a = [r.event for r in tb_a.logger.records]
    assert "catalog.federated_query" in events_a
    assert "catalog.demote" in events_a
    stats_a, stats_b = tb_a.federation.stats(), tb_b.federation.stats()
    assert stats_a == stats_b
    assert stats_a["demotes"] > 0


def test_federated_chaos_different_seed_diverges():
    tb_a, _ = federated_chaos_run(seed=41)
    tb_b, _ = federated_chaos_run(seed=42)
    assert ulm_sequence(tb_a) != ulm_sequence(tb_b)


def test_same_seed_identical_tape_chaos_lifelines():
    """The staging pipeline (batch tape scheduler, cut-through, prefetch)
    is part of the determinism contract too: a tape-heavy chaos run must
    replay bit-for-bit."""
    tb_a, ticket_a = tape_chaos_run(seed=31)
    tb_b, ticket_b = tape_chaos_run(seed=31)
    seq_a, seq_b = ulm_sequence(tb_a), ulm_sequence(tb_b)
    assert len(seq_a) > 50
    assert seq_a == seq_b
    assert [(f.logical_file, f.state, f.bytes_done, f.finished_at)
            for f in ticket_a.files] == \
        [(f.logical_file, f.state, f.bytes_done, f.finished_at)
         for f in ticket_b.files]
    assert all(f.state in _TERMINAL for f in ticket_a.files)
    # The run really exercised the tape path (mounts happened), and the
    # RM's dataset hint really reached the HRM.
    hrm = tb_a.sites["lbnl-pdsf"].hrm
    assert hrm.mss.tape.mounts_total > 0
    assert hrm.mss.tape.mounts_total == \
        tb_b.sites["lbnl-pdsf"].hrm.mss.tape.mounts_total
