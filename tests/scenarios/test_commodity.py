"""Tests for the Figure 8 commodity-internet reliability scenario."""

import numpy as np
import pytest

from repro.net import FaultSchedule, mbps
from repro.scenarios import CommodityTestbed, run_figure8_schedule
from repro.scenarios.commodity import (
    HOURS,
    default_fault_schedule,
    default_parallelism_schedule,
)

GB = 2 ** 30


def quick_run(duration=1.0 * HOURS, faults=None, parallelism=None, **kw):
    tb = CommodityTestbed(seed=5, **kw)
    if faults is None:
        faults = FaultSchedule()  # clean run unless specified
    if parallelism is None:
        parallelism = [(0.0, 2)]
    return tb, run_figure8_schedule(tb, duration=duration, faults=faults,
                                    parallelism=parallelism,
                                    bin_seconds=60.0)


def test_plateau_is_disk_limited():
    """~80 Mb/s: below the 100 Mb/s NIC because the disk is 10 MB/s."""
    tb, res = quick_run()
    plateau = res.plateau_rate * 8 / 1e6
    assert 70 <= plateau <= 90
    assert res.transfers_completed >= 10
    assert res.total_bytes >= res.transfers_completed * 2 * GB * 0.99


def test_fast_disk_moves_bottleneck_to_nic():
    tb, res = quick_run(disk_rate=40 * 2**20)
    plateau = res.plateau_rate * 8 / 1e6
    assert plateau > 90  # now NIC-limited near 100 Mb/s


def test_power_failure_zeroes_bandwidth_then_recovers():
    faults = FaultSchedule().site_outage("dallas", start=600.0,
                                         duration=600.0,
                                         description="power failure")
    tb, res = quick_run(duration=0.7 * HOURS, faults=faults)
    rates = res.bin_rates
    # Bins inside the outage are (near) zero.
    outage_bins = rates[11:19]
    assert outage_bins.max() < mbps(10)
    # Recovery afterwards.
    assert rates[25:].max() > mbps(60)
    assert res.restarts >= 1
    assert any("power failure" in d for _, _, d in res.fault_log)


def test_degraded_backbone_reduces_but_does_not_kill():
    faults = FaultSchedule().degrade("commodity:fwd", start=600.0,
                                     duration=900.0, fraction=0.15)
    tb, res = quick_run(duration=0.7 * HOURS, faults=faults)
    during = res.bin_rates[11:24]
    before = res.bin_rates[:9]
    assert 0 < during.mean() < before.mean() * 0.5


def test_dns_outage_blocks_new_transfers_only():
    faults = FaultSchedule().dns_outage(start=300.0, duration=600.0)
    tb, res = quick_run(duration=0.5 * HOURS, faults=faults)
    assert res.transfers_failed >= 1  # connects refused during outage
    assert res.transfers_completed >= 3


def test_default_schedules_shape():
    sched = default_fault_schedule()
    assert len(sched) == 3
    kinds = {f.kind for f in sched.faults}
    assert kinds == {"site", "dns", "degrade"}
    steps = default_parallelism_schedule()
    assert steps[0][0] == 0.0
    assert max(n for _, n in steps) == 8


def test_parallelism_changes_visible():
    """Higher parallelism raises throughput when window-limited."""
    tb = CommodityTestbed(seed=5, disk_rate=40 * 2**20,
                          one_way_latency=0.150)  # fat RTT: window bites
    res = run_figure8_schedule(
        tb, duration=0.6 * HOURS, faults=FaultSchedule(),
        parallelism=[(0.0, 1), (0.3 * HOURS, 8)], bin_seconds=60.0)
    first = res.bin_rates[2:16].mean()
    second = res.bin_rates[20:34].mean()
    assert second > 1.5 * first


def test_timeline_rows_units():
    tb, res = quick_run(duration=0.2 * HOURS)
    rows = res.timeline_rows(every=3)
    assert all(0 <= h <= 0.2 for h, _ in rows)
    assert any(r > 50 for _, r in rows)  # Mb/s scale


def test_restarts_resume_across_outage():
    """A transfer interrupted by the outage finishes afterwards without
    re-sending everything: total bytes ≈ completed transfers × 2 GB."""
    faults = FaultSchedule().site_outage("dallas", start=200.0,
                                         duration=400.0)
    tb, res = quick_run(duration=0.5 * HOURS, faults=faults)
    assert res.restarts >= 1
    assert res.total_bytes == pytest.approx(
        res.transfers_completed * 2 * GB, rel=0.02)
