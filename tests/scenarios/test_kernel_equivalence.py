"""Kernel-backend equivalence on the full stack.

The calendar queue must be observationally identical to the binary
heap: a seeded chaos run (faults, retries, scheduler, tape) through
``kernel_queue="calendar"`` must emit the *same* NetLogger ULM lifeline
— timestamps, fields, ordering — as the same run through
``kernel_queue="heap"``. This is the strongest cross-backend check we
have: any divergence in dispatch order anywhere in a ~10³-event run
shows up as a lifeline diff.
"""

from repro.net.faults import FaultSchedule
from repro.rm.request import FileState
from repro.rm.resilience import ResiliencePolicy, RetryPolicy
from repro.rm.scheduler import SchedulerConfig
from repro.scenarios.esg import EsgTestbed

MB = 2**20
_TERMINAL = (FileState.DONE, FileState.FAILED, FileState.CANCELLED)


def chaos_run(kernel_queue: str, seed: int = 29):
    resilience = ResiliencePolicy(
        retry=RetryPolicy(max_rounds=2, base_delay=10.0, multiplier=2.0,
                          max_delay=30.0, jitter=0.25),
        breaker_failure_threshold=2, file_deadline=150.0)
    tb = EsgTestbed(seed=seed, with_tape=True,
                    file_size_override=8 * MB, resilience=resilience,
                    scheduler=SchedulerConfig(per_server_cap=2),
                    kernel_queue=kernel_queue)
    tb.warm_nws(60.0)
    rng = tb.env.rng.stream("chaos.schedule")
    sites = sorted(tb.sites)
    hosts = sorted(tb.registry)
    sched = FaultSchedule()
    site = sites[int(rng.integers(len(sites)))]
    sched.link_outage(f"wan-{site}:fwd", float(rng.uniform(5.0, 60.0)),
                      float(rng.uniform(30.0, 90.0)),
                      description=f"{site} uplink outage")
    sched.server_outage(hosts[int(rng.integers(len(hosts)))],
                        float(rng.uniform(5.0, 60.0)),
                        float(rng.uniform(30.0, 90.0)),
                        description="gridftp daemon crash")
    tb.fault_injector().install(sched)
    ds = tb.dataset_ids()[0]
    requests = [(ds, str(f["logical_name"]))
                for f in tb.datasets[ds][:4]]
    ticket = tb.request_manager.submit(requests)
    tb.env.run(until=tb.env.now + 400.0)
    return tb, ticket


def test_calendar_and_heap_chaos_lifelines_identical():
    tb_cal, ticket_cal = chaos_run("calendar")
    tb_heap, ticket_heap = chaos_run("heap")
    seq_cal = [r.to_ulm() for r in tb_cal.logger.records]
    seq_heap = [r.to_ulm() for r in tb_heap.logger.records]
    assert len(seq_cal) > 50      # the run actually did something
    assert seq_cal == seq_heap
    assert [(f.logical_file, f.state, f.bytes_done, f.finished_at)
            for f in ticket_cal.files] == \
        [(f.logical_file, f.state, f.bytes_done, f.finished_at)
         for f in ticket_heap.files]
    assert all(f.state in _TERMINAL for f in ticket_cal.files)
    # Same event volume through the kernel, to the last event.
    assert tb_cal.env.kernel_stats["events_dispatched"] == \
        tb_heap.env.kernel_stats["events_dispatched"]
    assert tb_cal.env.kernel_stats["events_cancelled"] == \
        tb_heap.env.kernel_stats["events_cancelled"]
