"""Tests for the NWS forecaster suite."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nws import (
    AdaptiveForecaster,
    ExpSmoothingForecaster,
    LastValueForecaster,
    MedianForecaster,
    RunningMeanForecaster,
    SlidingMeanForecaster,
)


def feed(f, values):
    for v in values:
        f.update(v)
    return f.predict()


def test_last_value():
    assert LastValueForecaster().predict() is None
    assert feed(LastValueForecaster(), [1, 2, 3]) == 3


def test_running_mean():
    assert feed(RunningMeanForecaster(), [1, 2, 3, 4]) == pytest.approx(2.5)


def test_sliding_mean_window():
    f = SlidingMeanForecaster(window=2)
    assert feed(f, [10, 1, 3]) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        SlidingMeanForecaster(window=0)


def test_median_robust_to_outlier():
    f = MedianForecaster(window=5)
    assert feed(f, [10, 10, 10, 1000, 10]) == 10
    even = MedianForecaster(window=4)
    assert feed(even, [1, 2, 3, 4]) == pytest.approx(2.5)


def test_exp_smoothing():
    f = ExpSmoothingForecaster(alpha=0.5)
    assert feed(f, [10]) == 10
    assert feed(ExpSmoothingForecaster(0.5), [10, 20]) == pytest.approx(15)
    with pytest.raises(ValueError):
        ExpSmoothingForecaster(alpha=0)
    with pytest.raises(ValueError):
        ExpSmoothingForecaster(alpha=1.5)


def test_adaptive_empty_and_validation():
    assert AdaptiveForecaster().predict() is None
    assert AdaptiveForecaster().best_name is None
    with pytest.raises(ValueError):
        AdaptiveForecaster([])


def test_adaptive_tracks_constant_series():
    f = AdaptiveForecaster()
    for _ in range(20):
        f.update(42.0)
    assert f.predict() == pytest.approx(42.0)


def test_adaptive_prefers_last_value_on_trend():
    """On a steady ramp, last-value beats the running mean."""
    f = AdaptiveForecaster()
    for i in range(50):
        f.update(float(i))
    assert f.best_name == "last"
    assert f.predict() == 49.0


def test_adaptive_prefers_robust_method_on_spiky_series():
    """With rare huge spikes, median/means beat last-value."""
    rng = np.random.default_rng(3)
    f = AdaptiveForecaster()
    for i in range(300):
        v = 100.0 + rng.normal(0, 1)
        if i % 17 == 0:
            v = 5000.0
        f.update(v)
    assert f.best_name != "last"
    mse = dict(zip([s.name for s in f.forecasters], f.mse()))
    assert mse[f.best_name] == min(mse.values())


@given(st.lists(st.floats(0.0, 1e6), min_size=1, max_size=50))
@settings(max_examples=60, deadline=None)
def test_property_adaptive_never_worse_than_worst(values):
    """The adaptive forecast is always one of the sub-forecasts, and its
    accumulated error is the minimum over the suite."""
    f = AdaptiveForecaster()
    for v in values:
        f.update(v)
    preds = {sub.predict() for sub in f.forecasters}
    assert f.predict() in preds
    assert min(f.mse()) == pytest.approx(
        f.mse()[[s.name for s in f.forecasters].index(f.best_name)])


@given(st.lists(st.floats(1.0, 100.0), min_size=2, max_size=40))
@settings(max_examples=60, deadline=None)
def test_property_forecasts_within_observed_range(values):
    """All suite members forecast inside [min, max] of the history."""
    lo, hi = min(values), max(values)
    f = AdaptiveForecaster()
    for v in values:
        f.update(v)
    for sub in f.forecasters:
        p = sub.predict()
        assert lo - 1e-9 <= p <= hi + 1e-9
