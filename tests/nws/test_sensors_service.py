"""Tests for NWS sensors and the service + MDS publication."""

import pytest

from repro.hosts import Host
from repro.mds import MdsService
from repro.net import FluidNetwork, Topology, mbps
from repro.nws import CpuSensor, NetworkSensor, NetworkWeatherService
from repro.sim import Environment


def net_fixture(capacity=mbps(100), latency=0.01):
    env = Environment(seed=2)
    topo = Topology()
    topo.duplex_link("A", "B", capacity, latency)
    return env, topo, FluidNetwork(env, topo)


def test_probe_measures_free_path():
    env, topo, net = net_fixture()
    sensor = NetworkSensor(env, net, "A", "B", probe_bytes=64 * 1024)

    def main():
        result = yield from sensor.probe_once()
        return result

    p = env.process(main())
    env.run(until=p)
    result = p.value
    # 64 KB on an empty 100 Mb/s path ≈ link rate.
    assert result.bandwidth == pytest.approx(mbps(100), rel=0.05)
    assert result.latency == pytest.approx(0.01, rel=0.3)
    assert not result.timed_out


def test_probe_sees_congestion():
    env, topo, net = net_fixture()
    # Saturate the path with a long-lived flow.
    net.transfer("A", "B", mbps(100) * 1000)
    sensor = NetworkSensor(env, net, "A", "B")

    def main():
        result = yield from sensor.probe_once()
        return result.bandwidth

    p = env.process(main())
    env.run(until=p)
    # Fair share: about half the link.
    assert p.value == pytest.approx(mbps(50), rel=0.1)


def test_probe_times_out_on_dead_path():
    env, topo, net = net_fixture()
    topo.links["A<->B:fwd"].set_down()
    sensor = NetworkSensor(env, net, "A", "B", timeout=5.0)

    def main():
        result = yield from sensor.probe_once()
        return result

    p = env.process(main())
    env.run(until=p)
    assert p.value.timed_out
    assert p.value.bandwidth == 0.0
    assert sensor.probes_timed_out == 1


def test_sensor_validation():
    env, topo, net = net_fixture()
    with pytest.raises(ValueError):
        NetworkSensor(env, net, "A", "B", period=0)
    with pytest.raises(ValueError):
        NetworkSensor(env, net, "A", "B", probe_bytes=0)


def test_periodic_sensor_feeds_service():
    env, topo, net = net_fixture()
    nws = NetworkWeatherService(env, net)
    nws.monitor("A", "B", period=10.0)
    env.run(until=65.0)
    fc = nws.forecast("A", "B")
    assert fc is not None
    assert fc.samples >= 6
    assert fc.bandwidth == pytest.approx(mbps(100), rel=0.1)
    assert nws.forecast("B", "A") is None  # not monitored


def test_monitor_idempotent():
    env, topo, net = net_fixture()
    nws = NetworkWeatherService(env, net)
    s1 = nws.monitor("A", "B")
    s2 = nws.monitor("A", "B")
    assert s1 is s2
    assert nws.monitored_pairs() == (("A", "B"),)


def test_observe_external_measurement():
    env, topo, net = net_fixture()
    nws = NetworkWeatherService(env, net)
    nws.observe("A", "B", bandwidth=mbps(42), latency=0.005)
    fc = nws.forecast("A", "B")
    assert fc.bandwidth == pytest.approx(mbps(42))


def test_forecast_tracks_outage_and_recovery():
    env, topo, net = net_fixture()
    nws = NetworkWeatherService(env, net)
    nws.monitor("A", "B", period=5.0)
    link = topo.links["A<->B:fwd"]

    def outage(env):
        yield env.timeout(30.0)
        link.set_down()
        net.reallocate()
        yield env.timeout(40.0)
        link.restore()
        net.reallocate()

    env.process(outage(env))
    env.run(until=60.0)
    fc_during = nws.forecast("A", "B")
    assert fc_during.bandwidth < mbps(100) * 0.8  # outage pulled it down
    env.run(until=200.0)
    fc_after = nws.forecast("A", "B")
    assert fc_after.bandwidth > fc_during.bandwidth


def test_nws_publishes_into_mds():
    env, topo, net = net_fixture()
    mds = MdsService(env)
    nws = NetworkWeatherService(env, net, mds=mds)
    nws.monitor("A", "B", period=10.0)
    env.run(until=35.0)

    def main():
        result = yield from mds.nws_forecast("A", "B")
        missing = yield from mds.nws_forecast("A", "Z")
        listing = yield from mds.all_forecasts()
        return result, missing, listing

    p = env.process(main())
    env.run(until=p)
    (bw, lat), missing, listing = p.value
    assert bw == pytest.approx(mbps(100), rel=0.1)
    assert missing is None
    assert len(listing) == 1
    assert listing[0][0] == "A"


def test_mds_host_info():
    env = Environment()
    mds = MdsService(env)
    mds.publish_host("jupiter.isi.edu", {"cpuavail": "0.85", "os": "linux"})
    mds.publish_host("jupiter.isi.edu", {"cpuavail": "0.42", "os": "linux"})

    def main():
        info = yield from mds.host_info("jupiter.isi.edu")
        nothing = yield from mds.host_info("ghost")
        return info, nothing

    p = env.process(main())
    env.run()
    info, nothing = p.value
    assert info["cpuavail"] == "0.42"  # latest wins
    assert nothing is None


def test_cpu_sensor_reads_io_load():
    env = Environment()
    topo = Topology()
    host = Host(topo, "w1")
    other = Host(topo, "w2")
    host.uplink("r")
    other.uplink("r")
    net = FluidNetwork(env, topo)
    sensor = CpuSensor(env, host)
    assert sensor.read_once() == pytest.approx(1.0)
    # Saturate the host's CPU link.
    net.transfer(host.app_node, other.app_node, 1e12)
    net.reallocate()
    assert sensor.read_once() < 0.2
    with pytest.raises(ValueError):
        CpuSensor(env, host, period=0)


def test_cpu_forecasting_via_service_and_mds():
    """§5: NWS forecasts available CPU; the RM reads it from MDS."""
    env = Environment(seed=8)
    topo = Topology()
    host = Host(topo, "w1")
    other = Host(topo, "w2")
    host.uplink("r")
    other.uplink("r")
    net = FluidNetwork(env, topo)
    mds = MdsService(env)
    nws = NetworkWeatherService(env, net, mds=mds,
                                rng=env.rng.stream("nws"))
    nws.monitor_host(host, period=10.0)
    nws.monitor_host(host, period=10.0)  # idempotent
    env.run(until=35.0)
    idle = nws.forecast_cpu("w1")
    assert idle is not None and idle > 0.9
    # Load the host, keep measuring: the forecast drops.
    net.transfer(host.app_node, other.app_node, 1e12)
    net.reallocate()
    env.run(until=200.0)
    busy = nws.forecast_cpu("w1")
    assert busy < idle - 0.3

    def read_mds():
        info = yield from mds.host_info("w1")
        return info

    p = env.process(read_mds())
    env.run(until=p)
    assert float(p.value["cpuavail"]) == pytest.approx(busy, abs=0.1)
    assert nws.forecast_cpu("ghost") is None
