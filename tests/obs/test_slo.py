"""Multi-window burn-rate SLO engine."""

import pytest

from repro.obs import Observability
from repro.obs.slo import SloAlert, SloEngine, SloSpec
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def obs(env):
    return Observability.create(env)


def make_engine(env, obs, **spec_kw):
    engine = SloEngine(env, obs, eval_interval=15.0)
    kw = dict(name="ttfb", objective="p95_ttfb", threshold=1.0,
              tenant="t", long_window=60.0, short_window=30.0)
    kw.update(spec_kw)
    engine.add(SloSpec(**kw))
    return engine


def step(env, engine, seconds=15.0):
    env.run(until=env.now + seconds)
    return engine.evaluate()[0]


# -- spec validation --------------------------------------------------------

def test_spec_validation():
    with pytest.raises(ValueError):
        SloSpec("x", "p99_made_up", threshold=1.0)
    with pytest.raises(ValueError):
        SloSpec("x", "p95_ttfb", threshold=0.0)
    with pytest.raises(ValueError):
        SloSpec("x", "p95_ttfb", threshold=1.0, error_budget=1.0)
    with pytest.raises(ValueError):
        SloSpec("x", "p95_ttfb", threshold=1.0,
                long_window=10.0, short_window=30.0)
    with pytest.raises(ValueError):
        SloEngine(Environment(), None, eval_interval=0.0)


def test_duplicate_spec_names_rejected(env, obs):
    engine = make_engine(env, obs)
    with pytest.raises(ValueError):
        engine.add(SloSpec("ttfb", "p95_ttfb", threshold=2.0))


def test_tenant_label_selector():
    assert SloSpec("a", "p95_ttfb", 1.0, tenant="x").labels == \
        {"tenant": "x"}
    assert SloSpec("a", "p95_ttfb", 1.0).labels == {}


# -- burn computation -------------------------------------------------------

def test_no_traffic_burns_nothing(env, obs):
    engine = make_engine(env, obs)
    ev = step(env, engine)
    assert ev.value_long is None
    assert ev.burn_long == 0.0
    assert not ev.breaching
    assert engine.alerts == []


def test_latency_burn_opens_and_closes_an_alert(env, obs):
    engine = make_engine(env, obs)
    # every request blows the 1 s bound: 100% of budget-relevant
    # traffic is bad, burn = 1.0 / 0.05 = 20x in both windows.
    for _ in range(20):
        obs.observe("rm.tenant_ttfb_seconds", 10.0, tenant="t")
    ev = step(env, engine)
    assert ev.breaching
    assert ev.burn_long == pytest.approx(20.0)
    assert ev.value_long == pytest.approx(10.0, rel=0.5)  # windowed p95
    assert len(engine.alerts) == 1 and engine.alerts[0].open
    assert engine.alerts[0].tenant == "t"

    # breach artifacts: ULM event, counter, faults-trace span
    events = [r for r in obs.logger.records
              if r.event == "slo.breach.begin"]
    assert len(events) == 1
    assert events[0].fields["slo"] == "ttfb"
    assert obs.metrics.counter("slo.breaches_total") \
        .value(slo="ttfb") == 1.0
    spans = [s for s in obs.tracer.for_trace("faults")
             if s.name == "slo.breach"]
    assert len(spans) == 1 and spans[0].open

    # now only fast requests; once the bad window ages out of both
    # windows the burn drops and the alert closes.
    for _ in range(6):
        for _ in range(20):
            obs.observe("rm.tenant_ttfb_seconds", 0.001, tenant="t")
        ev = step(env, engine)
    assert not ev.breaching
    alert = engine.alerts[0]
    assert not alert.open and alert.closed_at is not None
    assert alert.peak_burn >= 20.0
    ends = [r for r in obs.logger.records if r.event == "slo.breach.end"]
    assert len(ends) == 1
    assert not spans[0].open and spans[0].status == "recovered"


def test_breach_requires_both_windows_burning(env, obs):
    engine = make_engine(env, obs)
    # bad traffic, then three quiet short-windows: the long window
    # still remembers the damage but the short window has recovered,
    # so the engine must NOT page (SRE multi-window rule).
    for _ in range(20):
        obs.observe("rm.tenant_ttfb_seconds", 10.0, tenant="t")
    env.run(until=engine.eval_interval)   # snapshot the bad state
    engine.evaluate()
    engine.alerts.clear()                 # ignore the initial page
    for _ in range(20):
        obs.observe("rm.tenant_ttfb_seconds", 0.001, tenant="t")
    ev = step(env, engine, seconds=30.0)
    assert ev.burn_long > 1.0             # sustained damage visible
    assert ev.burn_short < 1.0            # but not happening now
    assert not ev.breaching


def test_goodput_floor_burn(env, obs):
    engine = make_engine(env, obs, name="goodput",
                         objective="goodput_floor", threshold=1000.0)
    # silence is not a breach (no requests != slow requests)
    ev = step(env, engine)
    assert ev.burn_long == 0.0 and not ev.breaching
    # 1500 B over 30 s of monitoring = 50 B/s against a 1000 B/s
    # floor: burn 20x, breach.
    obs.count("rm.tenant_bytes_total", 100.0 * 15.0, tenant="t")
    ev = step(env, engine)
    assert ev.value_long == pytest.approx(50.0)
    assert ev.burn_long == pytest.approx(20.0)
    assert ev.breaching
    # 10 kB/s beats the floor comfortably: alert closes.
    for _ in range(5):
        obs.count("rm.tenant_bytes_total", 10_000.0 * 15.0, tenant="t")
        ev = step(env, engine)
    assert not ev.breaching
    assert all(not a.open for a in engine.alerts)


def test_periodic_start_is_idempotent(env, obs):
    engine = make_engine(env, obs)
    engine.start()
    engine.start()
    env.run(until=61.0)
    # one evaluator: 4 ticks at 15/30/45/60, not 8
    assert len(engine.evaluations) == 4


def test_summary_rows(env, obs):
    engine = make_engine(env, obs)
    engine.add(SloSpec("queue", "queue_wait_p95", threshold=5.0))
    for _ in range(10):
        obs.observe("rm.tenant_ttfb_seconds", 10.0, tenant="t")
    step(env, engine)
    rows = {r["slo"]: r for r in engine.summary()}
    assert rows["ttfb"]["breaching"] and rows["ttfb"]["open"] == 1
    assert rows["ttfb"]["tenant"] == "t"
    assert rows["queue"]["tenant"] == "-"
    assert not rows["queue"]["breaching"]
    assert rows["queue"]["alerts"] == 0


def test_alert_dataclass_open_property():
    a = SloAlert("x", "t", opened_at=1.0)
    assert a.open
    a.closed_at = 2.0
    assert not a.open
