"""Tests for the causal tracer."""

import pytest

from repro.obs.trace import Tracer
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def tracer(env):
    return Tracer(env)


def _advance(env, seconds):
    env.run(until=env.now + seconds)


def test_span_lifecycle_and_duration(env, tracer):
    span = tracer.start("rm.file", trace="ticket-1", file="f1")
    assert span.open
    assert span.duration is None
    _advance(env, 2.5)
    span.finish(status="done", bytes=42)
    assert not span.open
    assert span.status == "done"
    assert span.duration == pytest.approx(2.5)
    assert span.fields["bytes"] == "42"


def test_finish_is_idempotent(env, tracer):
    span = tracer.start("op")
    _advance(env, 1.0)
    span.finish()
    _advance(env, 1.0)
    span.finish(status="late")
    assert span.status == "ok"
    assert span.duration == pytest.approx(1.0)


def test_annotate_stringifies(tracer):
    span = tracer.start("op").annotate(stripes=4)
    assert span.fields["stripes"] == "4"


def test_context_manager_records_error_status(tracer):
    with pytest.raises(RuntimeError):
        with tracer.start("op") as span:
            raise RuntimeError("boom")
    assert span.status == "error"
    assert not span.open


def test_parent_links_and_trace_defaults(tracer):
    root = tracer.start("ticket")
    child = tracer.start("file", parent=root)
    orphan = tracer.start("loner")
    assert root.trace_id == f"t:{root.span_id}"
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    assert orphan.trace_id != root.trace_id


def test_queries_and_trace_order(tracer):
    a = tracer.start("ticket", trace="ticket-1")
    tracer.start("file", parent=a)
    tracer.start("fault.outage", trace="faults")
    assert tracer.traces() == ["ticket-1", "faults"]
    assert [s.name for s in tracer.for_trace("ticket-1")] == [
        "ticket", "file"]
    assert len(tracer.find("file")) == 1
    assert len(tracer) == 3


def test_render_tree_indents_children(env, tracer):
    root = tracer.start("ticket", trace="ticket-9")
    child = tracer.start("rm.file", parent=root, file="f1")
    _advance(env, 1.0)
    child.finish()
    root.finish()
    text = tracer.render_tree("ticket-9")
    lines = text.splitlines()
    assert lines[0] == "trace ticket-9"
    assert lines[1].startswith("  - ticket")
    assert lines[2].startswith("    - rm.file")
    assert "file=f1" in lines[2]
    assert "+1.000s" in lines[2]
