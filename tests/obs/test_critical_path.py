"""Critical-path extraction and bottleneck attribution.

Unit cases build lifelines from hand-written ULM logs; the chaos case
(satellite of the observability PR) replays every seeded chaos run and
pins the telescoping identity — blame self-times sum to end-to-end
latency — to 1e-6 across fault injection, retries, and replica swaps.
"""

import pytest

from repro.netlogger import LogRecord, reconstruct_lifelines
from repro.obs.critical_path import (BLAME_STAGES, attribute_bottleneck,
                                     extract_critical_path,
                                     extract_critical_paths)
from repro.obs.timeseries import TimeSeriesRecorder
from repro.sim import Environment


def rec(t, event, **fields):
    return LogRecord(t, "client", "rm", event,
                     {k: str(v) for k, v in fields.items()})


def tape_bound_log(name, ticket, t0=0.0):
    """A lifeline dominated by mount/seek wait on the tape drive."""
    return [
        rec(t0 + 0.0, "rm.request", file=name, ticket=ticket),
        rec(t0 + 1.0, "rm.select", file=name, ticket=ticket, host="pdsf"),
        rec(t0 + 2.0, "gridftp.connect", file=name, ticket=ticket),
        rec(t0 + 3.0, "hrm.stage.request", file=name),
        rec(t0 + 80.0, "tape.read.begin", file=name),
        rec(t0 + 95.0, "hrm.stage.done", file=name),
        rec(t0 + 96.0, "gridftp.first_byte", file=name),
        rec(t0 + 110.0, "rm.transfer.done", file=name, ticket=ticket),
    ]


def test_blame_mapping_splits_mount_from_streaming():
    life = reconstruct_lifelines(tape_bound_log("f1", 1))["f1"]
    path = extract_critical_path(life)
    assert path is not None
    assert path.ticket == "1"
    assert path.outcome == "done"
    times = path.self_times()
    # drive wait + mount + seek is "mount"; streaming off tape is "stage"
    assert times["mount"] == pytest.approx(77.0)
    assert times["stage"] == pytest.approx(15.0)
    assert times["transfer"] == pytest.approx(14.0)
    assert times["catalog"] == pytest.approx(1.0)
    assert path.dominant() == ("mount", pytest.approx(77.0))
    assert path.telescopes()
    assert sum(times.values()) == pytest.approx(path.total)


def test_pre_request_prefetch_is_clipped_off_the_path():
    # staging that ran before the request (speculative prefetch) is not
    # on this request's critical path — the window clips it out.
    records = [
        rec(0.0, "rm.request", file="warm", ticket=2),
        rec(1.0, "rm.select", file="warm", ticket=2),
        rec(2.0, "gridftp.connect", file="warm", ticket=2),
        rec(3.0, "gridftp.first_byte", file="warm"),
        rec(10.0, "rm.transfer.done", file="warm", ticket=2),
    ]
    life = reconstruct_lifelines(records)["warm"]
    # simulate a stage span recorded before the request window
    path = extract_critical_path(life)
    assert path.start == 0.0 and path.end == 10.0
    assert all(s.start >= 0.0 and s.end <= 10.0 for s in path.stages)
    assert path.telescopes()


def test_nonterminal_lifelines_yield_no_path():
    records = [rec(0.0, "rm.request", file="open"),
               rec(1.0, "rm.select", file="open")]
    lives = reconstruct_lifelines(records)
    assert extract_critical_path(lives["open"]) is None
    assert extract_critical_paths(lives) == []


def test_every_milestone_stage_has_a_blame_category():
    from repro.netlogger.analysis import MILESTONE_STAGES
    for stage in set(MILESTONE_STAGES.values()):
        assert stage in BLAME_STAGES, f"unblamed stage {stage!r}"


def test_attribute_bottleneck_joins_the_busiest_resource():
    env = Environment()
    ts = TimeSeriesRecorder(env, interval=5.0)
    busy = {"tape.hpss.busy": 0.95, "tape.vault.busy": 0.10,
            "link.wan-client.util": 0.30}
    ts.add_multi_probe(lambda: dict(busy))
    ts.start()
    env.run(until=130.0)

    records = []
    for i in range(4):
        records += tape_bound_log(f"f{i}", ticket=7, t0=i * 1.0)
    lives = reconstruct_lifelines(records)
    report = attribute_bottleneck(lives, timeseries=ts)

    assert report.files == 4
    assert report.dominant_stage == "mount"
    assert report.dominant_counts["mount"] == 4
    assert report.dominant_share == 1.0
    # the join picks the busiest series in the tape.* family, not the
    # hotter-but-wrong-family WAN link
    assert report.resource is not None
    assert report.resource.series == "tape.hpss.busy"
    assert report.resource.mean == pytest.approx(0.95)
    assert report.resource.busy_fraction == 1.0
    assert "7" in report.per_ticket
    assert report.per_ticket["7"]["mount"] == pytest.approx(4 * 77.0)
    text = report.render()
    assert "dominant stage: mount" in text
    assert "tape.hpss.busy" in text


def test_attribution_without_timeseries_names_no_resource():
    lives = reconstruct_lifelines(tape_bound_log("f1", 1))
    report = attribute_bottleneck(lives)
    assert report.dominant_stage == "mount"
    assert report.resource is None


def test_empty_source_produces_empty_report():
    report = attribute_bottleneck([])
    assert report.files == 0
    assert report.dominant_stage is None
    assert report.dominant_share == 0.0


# ---------------------------------------------------------------------------
# Chaos: the telescoping identity under fault injection (all seeds)
# ---------------------------------------------------------------------------

def _chaos_seeds():
    from benchmarks.bench_chaos_survival import SEEDS
    return SEEDS


@pytest.mark.parametrize("seed", _chaos_seeds())
def test_chaos_paths_telescope_to_end_to_end_latency(seed):
    """Every terminal ticket file in every seeded chaos run must
    decompose into blame stages that sum to its end-to-end latency
    within 1e-6 — retries, backoff, replica switches and all."""
    from benchmarks.bench_chaos_survival import run_chaos

    tb, ticket, _sched, _inj = run_chaos(seed)
    lives = reconstruct_lifelines(tb.logger.records)
    terminal = {f.logical_file for f in ticket.files
                if f.finished_at is not None}
    assert terminal, "chaos run produced no terminal files"
    paths = {p.file: p for p in extract_critical_paths(lives)}
    missing = terminal - set(paths)
    assert not missing, f"terminal files with no critical path: {missing}"
    for name in sorted(terminal):
        path = paths[name]
        covered = sum(s.duration for s in path.stages)
        assert path.telescopes(tol=1e-6), (
            f"seed {seed} file {name}: stages cover {covered:.6f}s "
            f"of {path.total:.6f}s end-to-end")
