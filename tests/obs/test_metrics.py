"""Tests for the metrics registry."""

import json

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_counter_accumulates_per_label_set(env):
    c = Counter(env, "rm.transfers_total")
    c.inc(host="a")
    c.inc(host="a")
    c.inc(2.0, host="b")
    c.inc()
    assert c.value(host="a") == 2.0
    assert c.value(host="b") == 2.0
    assert c.value() == 1.0
    assert c.total == 5.0


def test_counter_rejects_negative(env):
    c = Counter(env, "n")
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_set_and_add(env):
    g = Gauge(env, "queue.depth")
    g.set(3.0)
    g.add(2.0)
    assert g.value() == 5.0
    g.set(1.0, host="x")
    assert g.value(host="x") == 1.0


def test_histogram_buckets_and_quantiles(env):
    h = Histogram(env, "lat", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count() == 5
    assert h.sum() == pytest.approx(56.05)
    # median sits in the (0.1, 1.0] bucket
    assert 0.1 <= h.quantile(0.5) <= 1.0
    assert h.quantile(0.8) == pytest.approx(10.0)
    # the top observation overflows every finite bucket
    assert h.quantile(0.99) == float("inf")
    assert Histogram(env, "empty").quantile(0.5) is None


def test_registry_get_or_create_and_kind_clash(env):
    reg = MetricsRegistry(env)
    c1 = reg.counter("a.total", help="things")
    assert reg.counter("a.total") is c1
    with pytest.raises(TypeError):
        reg.gauge("a.total")
    assert "a.total" in reg.names()


def test_prometheus_rendering_sanitizes_names(env):
    reg = MetricsRegistry(env)
    reg.counter("rm.transfers_total").inc(host="anl")
    reg.histogram("rm.seconds", buckets=(1.0,)).observe(0.5)
    text = reg.render_prometheus()
    assert "rm_transfers_total{host=\"anl\"} 1" in text
    assert "rm_seconds_bucket{le=\"1\"} 1" in text
    assert "rm_seconds_bucket{le=\"+Inf\"} 1" in text
    assert "rm_seconds_count 1" in text


def test_json_export_is_serializable_with_sim_timestamps(env):
    env.run(until=5.0)
    reg = MetricsRegistry(env)
    reg.counter("c").inc()
    blob = json.loads(json.dumps(reg.to_json()))
    sample = blob["metrics"]["c"]["samples"][0]
    assert sample["value"] == 1.0
    assert sample["t"] == 5.0
