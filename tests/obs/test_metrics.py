"""Tests for the metrics registry."""

import json

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry)
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_counter_accumulates_per_label_set(env):
    c = Counter(env, "rm.transfers_total")
    c.inc(host="a")
    c.inc(host="a")
    c.inc(2.0, host="b")
    c.inc()
    assert c.value(host="a") == 2.0
    assert c.value(host="b") == 2.0
    assert c.value() == 1.0
    assert c.total == 5.0


def test_counter_rejects_negative(env):
    c = Counter(env, "n")
    with pytest.raises(ValueError):
        c.inc(-1.0)


def test_gauge_set_and_add(env):
    g = Gauge(env, "queue.depth")
    g.set(3.0)
    g.add(2.0)
    assert g.value() == 5.0
    g.set(1.0, host="x")
    assert g.value(host="x") == 1.0


def test_histogram_buckets_and_quantiles(env):
    h = Histogram(env, "lat", buckets=(0.1, 1.0, 10.0))
    for v in (0.05, 0.5, 0.5, 5.0, 50.0):
        h.observe(v)
    assert h.count() == 5
    assert h.sum() == pytest.approx(56.05)
    # median sits in the (0.1, 1.0] bucket
    assert 0.1 <= h.quantile(0.5) <= 1.0
    assert h.quantile(0.8) == pytest.approx(10.0)
    # the top observation overflows every finite bucket
    assert h.quantile(0.99) == float("inf")
    assert Histogram(env, "empty").quantile(0.5) is None


def test_registry_get_or_create_and_kind_clash(env):
    reg = MetricsRegistry(env)
    c1 = reg.counter("a.total", help="things")
    assert reg.counter("a.total") is c1
    with pytest.raises(TypeError):
        reg.gauge("a.total")
    assert "a.total" in reg.names()


def test_prometheus_rendering_sanitizes_names(env):
    reg = MetricsRegistry(env)
    reg.counter("rm.transfers_total").inc(host="anl")
    reg.histogram("rm.seconds", buckets=(1.0,)).observe(0.5)
    text = reg.render_prometheus()
    assert "rm_transfers_total{host=\"anl\"} 1" in text
    assert "rm_seconds_bucket{le=\"1\"} 1" in text
    assert "rm_seconds_bucket{le=\"+Inf\"} 1" in text
    assert "rm_seconds_count 1" in text


def test_json_export_is_serializable_with_sim_timestamps(env):
    env.run(until=5.0)
    reg = MetricsRegistry(env)
    reg.counter("c").inc()
    blob = json.loads(json.dumps(reg.to_json()))
    sample = blob["metrics"]["c"]["samples"][0]
    assert sample["value"] == 1.0
    assert sample["t"] == 5.0


def test_quantile_interpolates_within_the_bucket(env):
    """Directed p95: 10 obs in (0,1], 10 in (1,2] puts the 95th
    percentile 9/10 of the way through the second bucket."""
    h = Histogram(env, "lat", buckets=(1.0, 2.0, 4.0))
    for _ in range(10):
        h.observe(0.5)
    for _ in range(10):
        h.observe(1.5)
    assert h.quantile(0.95) == pytest.approx(1.9)
    assert h.quantile(0.5) == pytest.approx(1.0)
    assert h.quantile(0.25) == pytest.approx(0.5)


def test_quantile_helpers_on_raw_rows():
    from repro.obs.metrics import count_over_threshold, quantile_from_counts
    bounds = (1.0, 2.0, 4.0)
    row = [10, 10, 0, 0]          # one slot per bound + overflow
    assert quantile_from_counts(bounds, row, 0.95) == pytest.approx(1.9)
    # threshold mid-bucket: half the second bucket is above 1.5
    assert count_over_threshold(bounds, row, 1.5) == pytest.approx(5.0)
    assert count_over_threshold(bounds, row, 4.0) == 0.0
    assert quantile_from_counts(bounds, [0, 0, 0, 0], 0.5) is None


def test_label_cardinality_guard_bounds_labelsets(env):
    from repro.netlogger import NetLogger
    logger = NetLogger(env)
    reg = MetricsRegistry(env, max_labelsets=2, logger=logger)
    c = reg.counter("rm.requests_total")
    for i in range(5):
        c.inc(host=f"site-{i}")   # 3 of these exceed the bound
    assert c.overflowed == 3
    # overflowing increments land on the sentinel series, not new ones
    assert c.value(overflow="true") == 3.0
    assert c.value(host="site-0") == 1.0
    assert c.value(host="site-4") == 0.0
    # the registry self-metric counts the drops per metric
    drops = reg.counter("obs.labelsets_dropped_total")
    assert drops.value(metric="rm.requests_total") == 3.0
    # exactly one ULM warning, not one per dropped labelset
    warnings = [r for r in logger.records
                if r.event == "obs.cardinality.overflow"]
    assert len(warnings) == 1
    assert warnings[0].fields["metric"] == "rm.requests_total"


def test_cardinality_guard_never_blocks_existing_labelsets(env):
    reg = MetricsRegistry(env, max_labelsets=1)
    g = reg.gauge("depth")
    g.set(1.0, queue="a")         # occupies the single slot
    g.set(9.0, queue="a")         # updates in place, no overflow
    g.set(5.0, queue="b")         # rejected
    assert g.value(queue="a") == 9.0
    assert g.overflowed == 1
