"""Aligned-window time-series recording."""

import pytest

from repro.obs.timeseries import TimeSeriesRecorder
from repro.sim import Environment


@pytest.fixture
def env():
    return Environment()


def test_rejects_bad_parameters(env):
    with pytest.raises(ValueError):
        TimeSeriesRecorder(env, interval=0.0)
    with pytest.raises(ValueError):
        TimeSeriesRecorder(env, interval=5.0, max_samples=0)


def test_samples_land_on_aligned_boundaries(env):
    ts = TimeSeriesRecorder(env, interval=5.0)
    ts.add_probe("clock", lambda: env.now)
    env.run(until=3.0)        # start mid-window
    ts.start()
    env.run(until=21.0)
    times = [t for t, _v in ts.series("clock")]
    assert times == [5.0, 10.0, 15.0, 20.0]
    # every sample read the probe in the same tick it was stamped
    assert all(v == t for t, v in ts.series("clock"))


def test_multi_probe_feeds_aligned_series_with_holes(env):
    ts = TimeSeriesRecorder(env, interval=1.0)
    state = {"a": 1.0, "b": 2.0}
    ts.add_multi_probe(lambda: dict(state))
    ts.start()
    env.run(until=2.5)        # samples at 0, 1, 2
    del state["b"]            # probe stops reporting b
    state["a"] = 5.0
    env.run(until=4.5)        # samples at 3, 4
    assert [v for _t, v in ts.series("a")] == [1.0, 1.0, 1.0, 5.0, 5.0]
    # b has explicit holes, keeping the tick axes aligned
    assert [v for _t, v in ts.series("b")] == [2.0, 2.0, 2.0, None, None]
    assert ts.names() == ["a", "b"]


def test_window_aggregates_and_hole_policy(env):
    ts = TimeSeriesRecorder(env, interval=1.0)
    vals = iter([0.2, 1.0, None, 0.95])
    current = {"v": None}

    def probe():
        current["v"] = next(vals)
        return {"v": current["v"]} if current["v"] is not None else {}

    ts.add_multi_probe(probe)
    ts.start()
    env.run(until=3.5)
    assert ts.value_at("v", 1.4) == 1.0
    assert ts.value_at("v", 2.7) is None    # the hole itself
    # holes zero-fill by default, or are skipped with fill=None
    assert ts.mean("v", 0.0, 3.0) == pytest.approx((0.2 + 1.0 + 0.0 + 0.95) / 4)
    assert ts.mean("v", 0.0, 3.0, fill=None) == \
        pytest.approx((0.2 + 1.0 + 0.95) / 3)
    assert ts.peak("v", 0.0, 3.0) == 1.0
    # 2 of 4 windows at >= 0.9; the hole counts as idle
    assert ts.busy_fraction("v", 0.0, 3.0, threshold=0.9) == 0.5
    assert ts.mean("missing", 0.0, 3.0) == 0.0    # all-holes, zero-filled
    assert ts.mean("missing", 0.0, 3.0, fill=None) is None


def test_max_samples_ages_out_oldest_ticks(env):
    ts = TimeSeriesRecorder(env, interval=1.0, max_samples=3)
    ts.add_probe("clock", lambda: env.now)
    ts.start()
    env.run(until=5.5)        # six samples at 0..5
    series = ts.series("clock")
    assert [t for t, _v in series] == [3.0, 4.0, 5.0]
    assert [v for _t, v in series] == [3.0, 4.0, 5.0]
    assert ts.samples_taken == 6
    assert ts.to_json()["dropped_ticks"] == 3


def test_json_export_is_aligned(env):
    ts = TimeSeriesRecorder(env, interval=2.0)
    ts.add_probe("x", lambda: 1.0)
    ts.add_probe("y", lambda: 2.0)
    ts.start()
    env.run(until=4.5)
    doc = ts.to_json()
    assert doc["interval"] == 2.0
    assert doc["ticks"] == [0.0, 2.0, 4.0]
    assert doc["series"]["x"] == [1.0, 1.0, 1.0]
    assert doc["series"]["y"] == [2.0, 2.0, 2.0]


def test_start_is_idempotent(env):
    ts = TimeSeriesRecorder(env, interval=1.0)
    ts.add_probe("x", lambda: 1.0)
    ts.start()
    ts.start()
    env.run(until=2.5)
    assert len(ts.series("x")) == 3   # one sampler, not two
