"""Tests for the GSI stand-in: certs, proxies, mutual auth."""

import pytest

from repro.gsi import (
    AuthenticationError,
    CertificateAuthority,
    CredentialError,
    GsiContext,
    Identity,
    KeyPair,
    SecurityPolicy,
    TrustAnchors,
)
from repro.sim import Environment


def pki():
    ca = CertificateAuthority("DOE Science Grid CA")
    trust = TrustAnchors()
    trust.trust_ca(ca)
    return ca, trust


def test_keypair_deterministic_and_distinct():
    a = KeyPair.generate("seed")
    b = KeyPair.generate("seed")
    c = KeyPair.generate("other")
    assert a == b
    assert a != c
    assert a.sign("x") == b.sign("x")
    assert a.sign("x") != a.sign("y")


def test_ca_issued_cert_verifies():
    ca, trust = pki()
    ident = Identity("/DC=org/CN=alice", ca, trust)
    trust.verify(ident.certificate, now=0.0)


def test_untrusted_ca_rejected():
    ca, trust = pki()
    rogue = CertificateAuthority("Rogue CA")
    cert = rogue.issue("/CN=mallory", KeyPair.generate("m").public)
    with pytest.raises(CredentialError, match="untrusted issuer"):
        trust.verify(cert, now=0.0)


def test_tampered_cert_rejected():
    ca, trust = pki()
    ident = Identity("/CN=alice", ca, trust)
    import dataclasses
    forged = dataclasses.replace(ident.certificate, subject="/CN=eve")
    with pytest.raises(CredentialError, match="bad signature"):
        trust.verify(forged, now=0.0)


def test_expired_cert_rejected():
    ca, trust = pki()
    ident = Identity("/CN=alice", ca, trust, not_after=100.0)
    trust.verify(ident.certificate, now=99.0)
    with pytest.raises(CredentialError, match="expired"):
        trust.verify(ident.certificate, now=101.0)


def test_proxy_chain_verifies_and_expires():
    ca, trust = pki()
    ident = Identity("/CN=alice", ca, trust)
    chain = ident.make_proxy(now=0.0, lifetime=3600.0)
    assert trust.verify_chain(chain, now=100.0) == "/CN=alice"
    with pytest.raises(CredentialError, match="proxy.*expired"):
        trust.verify_chain(chain, now=4000.0)


def test_broken_chain_rejected():
    ca, trust = pki()
    alice = Identity("/CN=alice", ca, trust)
    bob = Identity("/CN=bob", ca, trust)
    bad_chain = alice.make_proxy(now=0.0)[:1] + bob.chain
    with pytest.raises(CredentialError, match="chain break"):
        trust.verify_chain(bad_chain, now=0.0)


def test_empty_chain_rejected():
    ca, trust = pki()
    with pytest.raises(CredentialError, match="empty"):
        trust.verify_chain((), now=0.0)


def test_mutual_auth_succeeds_and_costs_time():
    ca, trust = pki()
    env = Environment()
    client = Identity("/CN=user", ca, trust)
    server = Identity("/CN=gridftp/host", ca, trust)
    ctx = GsiContext(trust, SecurityPolicy(handshake_rtts=2, crypto_time=0.05))

    def main(env):
        subjects = yield from ctx.authenticate(
            env, client.make_proxy(env.now), server.chain, rtt=0.04)
        return (env.now, subjects)

    p = env.process(main(env))
    env.run()
    t, (c, s) = p.value
    assert t == pytest.approx(2 * 0.04 + 0.1)
    assert c == "/CN=user"
    assert s == "/CN=gridftp/host"
    assert ctx.handshakes == 1


def test_mutual_auth_failure_still_costs_time():
    ca, trust = pki()
    rogue_ca = CertificateAuthority("rogue")
    rogue_trust = TrustAnchors()
    rogue_trust.trust_ca(rogue_ca)
    eve = Identity("/CN=eve", rogue_ca, rogue_trust)
    env = Environment()
    server = Identity("/CN=server", ca, trust)
    ctx = GsiContext(trust)

    def main(env):
        with pytest.raises(AuthenticationError):
            yield from ctx.authenticate(env, eve.chain, server.chain,
                                        rtt=0.04)
        return env.now

    p = env.process(main(env))
    env.run()
    assert p.value > 0
    assert ctx.rejections == 1


def test_handshake_cost_scales_with_rtt():
    policy = SecurityPolicy(handshake_rtts=2, crypto_time=0.01)
    assert policy.handshake_cost(0.1) > policy.handshake_cost(0.01)
    assert policy.handshake_cost(0.1) == pytest.approx(0.2 + 0.02)
