"""The introduction's workload arithmetic, checked against our generator.

"Running a high-resolution ocean model ... can generate a dozen
multi-gigabyte files in a few hours at an average rate of about
2 MB/second. Computing a century of simulated time takes more than a
month to complete and produces about 10 TB of archival output."
"""

import pytest

from repro.data import ClimateModelRun, GridSpec, SyntheticArchive, \
    monthly_files
from repro.net import GB, TB

# An eddy-resolving 0.1° ocean model writing four 3-D prognostic fields
# (T, S, u, v) on 40 depth levels — each level slice is catalogued as
# its own variable since our grids are 2-D. No arrays are materialized;
# monthly_files sizes the archive arithmetically.
OCEAN_GRID = GridSpec(nlat=1800, nlon=3600, months=12)
OCEAN_VARIABLES = tuple(f"{field}_l{level:02d}"
                        for field in ("thetao", "so", "uo", "vo")
                        for level in range(40))


def test_century_produces_about_ten_terabytes():
    run = ClimateModelRun(model="POP", run="ocean-hires",
                          grid=OCEAN_GRID)
    files = monthly_files(run, years=100, files_per_year=12,
                          variables=OCEAN_VARIABLES)
    total = sum(f["size"] for f in files)
    # 160 level-fields × 1800×3600×8 B × 1200 months ≈ 10 TB.
    assert 7 * TB < total < 13 * TB
    assert len(files) == 1200


def test_monthly_files_are_multi_gigabyte():
    run = ClimateModelRun(model="POP", run="ocean-hires",
                          grid=OCEAN_GRID)
    files = monthly_files(run, years=1, files_per_year=12,
                          variables=OCEAN_VARIABLES)
    # "a dozen multi-gigabyte files" per stretch of simulated time.
    assert len(files) == 12
    for f in files:
        assert 2 * GB < f["size"] < 20 * GB


def test_output_rate_about_two_megabytes_per_second():
    """A century in ~40 days of wall clock → ~2 MB/s average output."""
    run = ClimateModelRun(model="POP", run="ocean-hires",
                          grid=OCEAN_GRID)
    files = monthly_files(run, years=100, variables=OCEAN_VARIABLES)
    total = sum(f["size"] for f in files)
    wall_seconds = 40 * 86400.0  # "more than a month to complete"
    rate = total / wall_seconds
    assert 1e6 < rate < 5e6  # "about 2 MB/second"


def test_archive_total_matches_listing():
    arch = SyntheticArchive(years=3)
    assert arch.total_bytes == sum(
        f["size"] for files in arch.listing().values() for f in files)
    assert arch.total_bytes > 0
