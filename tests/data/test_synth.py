"""Tests for the synthetic climate model output generator."""

import numpy as np
import pytest

from repro.data import (
    ClimateModelRun,
    GridSpec,
    SyntheticArchive,
    decode,
    monthly_files,
)


def run():
    return ClimateModelRun(model="NCAR_CSM", run="run1",
                           grid=GridSpec(nlat=16, nlon=32, months=12),
                           start_year=1995, seed=1)


def test_grid_spec_axes():
    g = GridSpec(nlat=4, nlon=8, months=12)
    assert len(g.lats) == 4
    assert g.lats[0] == pytest.approx(-67.5)
    assert g.lats[-1] == pytest.approx(67.5)
    assert len(g.lons) == 8
    assert (g.lons >= 0).all() and (g.lons < 360).all()
    assert g.points_per_field == 32
    assert g.bytes_per_variable == 12 * 32 * 8
    with pytest.raises(ValueError):
        GridSpec(nlat=0)


def test_dataset_id():
    assert run().dataset_id == "pcmdi.ncar_csm.run1"


def test_generated_fields_physical():
    ds = run().generate_year(1995)
    tas = ds["tas"].data
    lat = ds.coords["lat"]
    # Warmer at the equator than the poles (annual mean).
    zonal_mean = tas.mean(axis=(0, 2))
    eq = zonal_mean[np.abs(lat).argmin()]
    pole = zonal_mean[np.abs(lat).argmax()]
    assert eq > pole + 20
    # Plausible Kelvin range.
    assert 180 < tas.min() < tas.max() < 330
    # Precipitation non-negative with an ITCZ peak.
    pr = ds["pr"].data
    assert pr.min() >= 0
    pr_zonal = pr.mean(axis=(0, 2))
    assert pr_zonal[np.abs(lat).argmin()] > pr_zonal.mean()
    # Cloud fraction bounded.
    clt = ds["clt"].data
    assert 0 <= clt.min() and clt.max() <= 100


def test_seasonal_cycle_antisymmetric():
    ds = run().generate_year(1995)
    tas = ds["tas"].data
    lat = ds.coords["lat"]
    north = lat > 30
    south = lat < -30
    nh_winter = tas[0][north].mean()   # January
    nh_summer = tas[6][north].mean()   # July
    sh_winter = tas[6][south].mean()
    sh_summer = tas[0][south].mean()
    assert nh_summer > nh_winter + 5
    assert sh_summer > sh_winter + 5


def test_generation_deterministic_per_seed():
    a = run().generate_year(1995)["tas"].data
    b = run().generate_year(1995)["tas"].data
    c = ClimateModelRun(model="NCAR_CSM", run="run1",
                        grid=GridSpec(16, 32, 12), seed=2
                        ).generate_year(1995)["tas"].data
    np.testing.assert_array_equal(a, b)
    assert not np.array_equal(a, c)


def test_years_differ():
    r = run()
    a = r.generate_year(1995)["tas"].data
    b = r.generate_year(1996)["tas"].data
    assert not np.array_equal(a, b)


def test_unknown_variable_rejected():
    with pytest.raises(ValueError):
        run().generate_year(1995, variables=("sst",))


def test_encode_year_roundtrips():
    blob = run().encode_year(1995, variables=("tas",))
    ds = decode(blob)
    assert "tas" in ds
    assert ds.attrs["model"] == "NCAR_CSM"


def test_monthly_files_listing():
    files = monthly_files(run(), years=2, files_per_year=12)
    assert len(files) == 24
    names = [f["logical_name"] for f in files]
    assert names[0] == "pcmdi.ncar_csm.run1.1995.m01-m01.nc"
    assert names[-1] == "pcmdi.ncar_csm.run1.1996.m12-m12.nc"
    assert len(set(names)) == 24
    # Size consistent with a 1-month file of 3 variables on this grid.
    expected = GridSpec(16, 32, 1).field_bytes(3)
    assert files[0]["size"] == expected


def test_monthly_files_grouping_and_override():
    files = monthly_files(run(), years=1, files_per_year=4)
    assert len(files) == 4
    assert files[0]["month_range"] == (1, 3)
    big = monthly_files(run(), years=1, size_override=2 * 2**30)
    assert all(f["size"] == 2 * 2**30 for f in big)
    with pytest.raises(ValueError):
        monthly_files(run(), years=1, files_per_year=5)
    with pytest.raises(ValueError):
        monthly_files(run(), years=0)


def test_archive_listing_and_volume():
    arch = SyntheticArchive(years=1)
    listing = arch.listing()
    assert set(listing) == {"pcmdi.ncar_csm.run1", "pcmdi.pcm.b06.22"}
    assert arch.total_bytes == sum(
        f["size"] for files in listing.values() for f in files)
