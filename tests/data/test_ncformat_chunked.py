"""Tests for the chunked SDBF layout and the partial reader."""

import numpy as np
import pytest

from repro.data import (
    CHUNKED_VERSION,
    ClimateModelRun,
    FormatError,
    GridSpec,
    SdbfReader,
    decode,
    decode_header,
    encode,
)
from repro.data.variables import Dataset, Variable


def small_dataset(seed=3):
    run = ClimateModelRun(grid=GridSpec(16, 32, 12), seed=seed)
    return run.generate_year(1995)


def test_chunked_header_and_roundtrip():
    ds = small_dataset()
    flat = encode(ds)
    chunked = encode(ds, chunks={"time": 1, "lat": 8, "lon": 16})
    assert SdbfReader(chunked).version == CHUNKED_VERSION
    assert SdbfReader(flat).version != CHUNKED_VERSION
    header = decode_header(chunked)
    for name in ds.variables:
        meta = header["variables"][name]
        assert meta["chunks"] == [1, 8, 16]
        # chunk grid: 12 * 2 * 2 = 48 extents
        assert len(meta["chunk_index"]) == 48
    # Whole-file decode is layout-independent.
    a, b = decode(flat), decode(chunked)
    assert a.name == b.name and a.attrs == b.attrs
    for name in a.variables:
        np.testing.assert_array_equal(a[name].data, b[name].data)
    for dim in a.coords:
        np.testing.assert_array_equal(a.coords[dim], b.coords[dim])


def test_chunks_as_single_int():
    ds = small_dataset()
    blob = encode(ds, chunks=4)
    header = decode_header(blob)
    assert header["variables"]["tas"]["chunks"] == [4, 4, 4]
    np.testing.assert_array_equal(decode(blob)["tas"].data,
                                  ds["tas"].data)


def test_read_slab_decodes_only_touched_chunks():
    ds = small_dataset()
    blob = encode(ds, chunks={"time": 1, "lat": 8, "lon": 16})
    reader = SdbfReader(blob)
    bounds = [(0, 2), (4, 11), (0, 15)]   # 3 time chunks x 1 lat x 1 lon
    slab = reader.read_slab("tas", bounds)
    expect = ds["tas"].data[0:3, 4:12, 0:16]
    np.testing.assert_array_equal(slab, expect)
    assert slab.flags["C_CONTIGUOUS"]
    touched = reader.touched_chunk_bytes("tas", bounds)
    full = ds["tas"].data.nbytes
    assert reader.bytes_decoded == touched < full


def test_flat_reader_falls_back_to_whole_variable():
    ds = small_dataset()
    reader = SdbfReader(encode(ds))
    assert not reader.is_chunked
    slab = reader.read_slab("tas", [(0, 0), (0, 3), (0, 3)])
    np.testing.assert_array_equal(slab, ds["tas"].data[:1, :4, :4])
    # Flat layout cannot decode partially.
    assert reader.bytes_decoded == ds["tas"].data.nbytes
    assert reader.needed_prefix("tas", [(0, 0), (0, 3), (0, 3)]) is None


def test_needed_prefix_suffices_for_the_slab():
    """A buffer truncated to needed_prefix still serves the request —
    the property ERET range staging relies on."""
    ds = small_dataset()
    blob = encode(ds, chunks={"time": 2, "lat": 8, "lon": 16})
    reader = SdbfReader(blob)
    bounds = [(0, 1), (0, 7), (0, 15)]
    prefix = reader.needed_prefix("tas", bounds)
    assert prefix is not None and prefix <= len(blob)
    truncated = SdbfReader(bytes(blob[:int(prefix)]))
    np.testing.assert_array_equal(truncated.read_slab("tas", bounds),
                                  reader.read_slab("tas", bounds))


def test_reader_errors_are_clean():
    ds = small_dataset()
    reader = SdbfReader(encode(ds, chunks=4))
    with pytest.raises(FormatError):
        reader.variable_meta("ghost")
    with pytest.raises(FormatError):
        reader.coord("ghost")
    with pytest.raises(FormatError):
        SdbfReader(b"not an sdbf blob")


def test_chunk_sizes_larger_than_dims_are_clamped():
    ds = Dataset("tiny")
    ds.add_coord("x", np.arange(3.0))
    ds.add_variable(Variable("v", ("x",), np.array([1.0, 2.0, 3.0])))
    blob = encode(ds, chunks={"x": 100})
    header = decode_header(blob)
    assert header["variables"]["v"]["chunks"] == [3]
    np.testing.assert_array_equal(decode(blob)["v"].data, ds["v"].data)


def test_coords_decode_from_short_prefix():
    """Coordinates are laid out before variable payloads so any reader
    can map ranges to chunks without touching the data."""
    ds = small_dataset()
    blob = encode(ds, chunks=4)
    reader = SdbfReader(blob)
    for dim in ("time", "lat", "lon"):
        np.testing.assert_array_equal(reader.coord(dim), ds.coords[dim])
    coord_bytes = sum(ds.coords[d].nbytes for d in ds.coords)
    assert reader.bytes_decoded == coord_bytes
