"""Tests for Dataset/Variable and subsetting."""

import numpy as np
import pytest

from repro.data import DataError, Dataset, Variable


def small_ds():
    ds = Dataset("test", {"model": "X"})
    ds.add_coord("time", [0.0, 1.0, 2.0])
    ds.add_coord("lat", [-45.0, 0.0, 45.0])
    ds.add_coord("lon", [0.0, 90.0, 180.0, 270.0])
    data = np.arange(36, dtype=float).reshape(3, 3, 4)
    ds.add_variable(Variable("tas", ("time", "lat", "lon"), data,
                             {"units": "K"}))
    return ds


def test_variable_dim_mismatch():
    with pytest.raises(DataError):
        Variable("v", ("time",), np.zeros((2, 2)))


def test_variable_casts_to_float():
    v = Variable("v", ("x",), np.array([1, 2, 3]))
    assert np.issubdtype(v.data.dtype, np.floating)


def test_variable_mean_by_dim():
    ds = small_ds()
    v = ds["tas"]
    assert v.mean("time").shape == (3, 4)
    assert v.mean() == pytest.approx(np.arange(36).mean())
    with pytest.raises(DataError):
        v.mean("depth")


def test_add_variable_checks_coords():
    ds = Dataset("d")
    ds.add_coord("time", [0.0, 1.0])
    with pytest.raises(DataError):  # unregistered dim
        ds.add_variable(Variable("v", ("lat",), np.zeros(3)))
    with pytest.raises(DataError):  # length mismatch
        ds.add_variable(Variable("v", ("time",), np.zeros(3)))


def test_coord_must_be_1d():
    ds = Dataset("d")
    with pytest.raises(DataError):
        ds.add_coord("bad", np.zeros((2, 2)))


def test_getitem_and_contains():
    ds = small_ds()
    assert "tas" in ds
    assert ds["tas"].attrs["units"] == "K"
    with pytest.raises(DataError):
        ds["pr"]


def test_nbytes_counts_vars_and_coords():
    ds = small_ds()
    assert ds.nbytes == 36 * 8 + (3 + 3 + 4) * 8


def test_subset_by_coordinate_ranges():
    ds = small_ds()
    sub = ds.subset("tas", lat=(-10, 50), lon=(0, 100))
    assert list(sub.coords["lat"]) == [0.0, 45.0]
    assert list(sub.coords["lon"]) == [0.0, 90.0]
    assert sub["tas"].shape == (3, 2, 2)
    # values preserved: tas[t=0, lat=0(idx1), lon=0(idx0)] == 4
    assert sub["tas"].data[0, 0, 0] == 4.0


def test_subset_full_when_no_ranges():
    ds = small_ds()
    sub = ds.subset("tas")
    assert sub["tas"].shape == ds["tas"].shape


def test_subset_errors():
    ds = small_ds()
    with pytest.raises(DataError):
        ds.subset("tas", lat=(500, 600))  # empty selection
    with pytest.raises(DataError):
        ds.subset("tas", lat=(10, -10))  # inverted
    with pytest.raises(DataError):
        ds.subset("tas", depth=(0, 1))  # unknown dim
    with pytest.raises(DataError):
        ds.subset("ghost")


def test_subset_reduces_bytes():
    ds = small_ds()
    sub = ds.subset("tas", time=(0, 0))
    assert sub.nbytes < ds.nbytes
