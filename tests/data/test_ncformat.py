"""Tests for the SDBF self-describing binary format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    Dataset,
    FormatError,
    Variable,
    decode,
    decode_header,
    encode,
)


def sample_ds():
    ds = Dataset("sample", {"model": "NCAR_CSM", "year": "1998"})
    ds.add_coord("time", [0.0, 0.5])
    ds.add_coord("lat", [-30.0, 30.0])
    ds.add_variable(Variable("tas", ("time", "lat"),
                             [[280.0, 290.0], [281.0, 291.0]],
                             {"units": "K"}))
    ds.add_variable(Variable("pr", ("time", "lat"),
                             [[1.0, 2.0], [3.0, 4.0]],
                             {"units": "mm/day"}))
    return ds


def test_roundtrip_preserves_everything():
    ds = sample_ds()
    out = decode(encode(ds))
    assert out.name == "sample"
    assert out.attrs == ds.attrs
    assert set(out.variables) == {"tas", "pr"}
    np.testing.assert_array_equal(out.coords["lat"], ds.coords["lat"])
    np.testing.assert_array_equal(out["tas"].data, ds["tas"].data)
    assert out["tas"].dims == ("time", "lat")
    assert out["tas"].attrs == {"units": "K"}


def test_header_readable_without_payload():
    blob = encode(sample_ds())
    header = decode_header(blob)
    assert header["name"] == "sample"
    assert header["variables"]["tas"]["shape"] == [2, 2]
    assert header["variables"]["pr"]["attrs"]["units"] == "mm/day"
    # Header lives near the front: truncating the payload keeps it valid.
    import struct
    hlen = struct.unpack("<II", blob[4:12])[1]
    assert decode_header(blob[:12 + hlen]) == header


def test_magic_rejected():
    with pytest.raises(FormatError):
        decode_header(b"NOPE" + b"\x00" * 20)
    with pytest.raises(FormatError):
        decode_header(b"SD")


def test_bad_version_rejected():
    blob = bytearray(encode(sample_ds()))
    blob[4] = 99
    with pytest.raises(FormatError, match="version"):
        decode_header(bytes(blob))


def test_truncated_payload_rejected():
    blob = encode(sample_ds())
    with pytest.raises(FormatError, match="truncated"):
        decode(blob[:-8])


def test_corrupt_header_rejected():
    blob = bytearray(encode(sample_ds()))
    blob[14] = 0xFF  # stomp JSON
    with pytest.raises(FormatError):
        decode_header(bytes(blob))


def test_empty_dataset_roundtrip():
    ds = Dataset("empty")
    out = decode(encode(ds))
    assert out.name == "empty"
    assert not out.variables


@given(st.integers(1, 5), st.integers(1, 5), st.integers(0, 2**31))
@settings(max_examples=40, deadline=None)
def test_property_roundtrip_arbitrary_shapes(nt, nx, seed):
    rng = np.random.default_rng(seed)
    ds = Dataset(f"p{seed}")
    ds.add_coord("time", np.arange(nt, dtype=float))
    ds.add_coord("x", np.arange(nx, dtype=float))
    data = rng.normal(size=(nt, nx))
    ds.add_variable(Variable("v", ("time", "x"), data))
    out = decode(encode(ds))
    np.testing.assert_array_almost_equal(out["v"].data, data, decimal=12)


def test_encoded_size_tracks_payload():
    ds = sample_ds()
    blob = encode(ds)
    assert len(blob) >= ds.nbytes  # payload + header + magic
    assert len(blob) < ds.nbytes + 2000  # header is compact
