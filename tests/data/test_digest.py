"""Tests for the deterministic content-digest model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.digest import (
    MARKS_KEY,
    add_mark,
    content_digest,
    file_digest,
    is_pristine,
    marks_of,
)
from repro.storage import FileObject


def test_digest_is_deterministic():
    a = content_digest("ta/f1.nc", 2**20)
    b = content_digest("ta/f1.nc", 2**20)
    assert a == b
    assert isinstance(a, str) and len(a) == 16  # blake2s-64 hex


def test_digest_distinguishes_name_size_content():
    base = content_digest("f.nc", 100.0)
    assert content_digest("g.nc", 100.0) != base
    assert content_digest("f.nc", 101.0) != base
    assert content_digest("f.nc", 100.0, content=b"tas v2") != base


def test_marks_change_digest():
    clean = content_digest("f.nc", 100.0)
    marked = content_digest("f.nc", 100.0, marks=("xfer@1.5",))
    assert marked != clean
    # Mark order matters: a different corruption history is a
    # different (wrong) byte stream.
    twice = content_digest("f.nc", 100.0, marks=("a", "b"))
    assert twice != content_digest("f.nc", 100.0, marks=("b", "a"))


def test_file_digest_matches_content_digest():
    f = FileObject("tas.nc", 4, content=b"tas\n")
    assert file_digest(f) == content_digest("tas.nc", 4, content=b"tas\n")
    g = FileObject("f.nc", 2048)
    assert file_digest(g) == content_digest("f.nc", 2048)


def test_add_mark_and_pristine():
    f = FileObject("f.nc", 2048)
    assert is_pristine(f)
    clean = file_digest(f)
    add_mark(f, "at-rest@12")
    assert not is_pristine(f)
    assert marks_of(f) == ("at-rest@12",)
    assert file_digest(f) != clean


def test_marks_survive_metadata_round_trip():
    f = FileObject("f.nc", 2048)
    add_mark(f, "a")
    add_mark(f, "b")
    g = FileObject("f.nc", 2048,
                   metadata={MARKS_KEY: f.metadata[MARKS_KEY]})
    assert marks_of(g) == ("a", "b")
    assert file_digest(g) == file_digest(f)


@given(st.text(min_size=1, max_size=40),
       st.floats(min_value=1, max_value=2**40, allow_nan=False),
       st.lists(st.text(max_size=10), max_size=4))
@settings(max_examples=200, deadline=None)
def test_property_digest_pure_function(name, size, marks):
    """Same inputs always hash the same; marked never equals pristine."""
    size = float(int(size))
    a = content_digest(name, size, marks=tuple(marks))
    b = content_digest(name, size, marks=tuple(marks))
    assert a == b
    if marks:
        assert a != content_digest(name, size)
