"""Tests for exact rate-series analysis, including property-based checks."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import RateRecorder, RateSeries, aggregate_series


def make_series():
    # 10 B/s on [0,10), 0 on [10,20), 30 B/s on [20,30)
    return RateSeries([0.0, 10.0, 20.0], [10.0, 0.0, 30.0], 30.0)


def test_total_bytes():
    assert make_series().total_bytes == pytest.approx(100 + 0 + 300)


def test_bytes_between():
    s = make_series()
    assert s.bytes_between(0, 10) == pytest.approx(100)
    assert s.bytes_between(5, 25) == pytest.approx(50 + 0 + 150)
    assert s.bytes_between(12, 18) == pytest.approx(0)


def test_average():
    s = make_series()
    assert s.average() == pytest.approx(400 / 30)
    assert s.average(20, 30) == pytest.approx(30)


def test_rate_at():
    s = make_series()
    assert s.rate_at(5.0) == 10.0
    assert s.rate_at(15.0) == 0.0
    assert s.rate_at(25.0) == 30.0
    assert s.rate_at(-1.0) == 0.0
    assert s.rate_at(30.0) == 0.0  # outside domain


def test_peak_windowed_finds_best_window():
    s = make_series()
    # Best 10 s window is [20,30): 30 B/s.
    assert s.peak_windowed(10.0) == pytest.approx(30.0)
    # Best 20 s window must straddle the dead zone: [10,30) = 300/20.
    assert s.peak_windowed(20.0) == pytest.approx(15.0)


def test_peak_windowed_window_larger_than_domain():
    s = make_series()
    assert s.peak_windowed(60.0) == pytest.approx(400 / 60.0)


def test_peak_instantaneous():
    assert make_series().peak_instantaneous() == 30.0


def test_sample_bins():
    s = make_series()
    t, r = s.sample(10.0)
    assert list(t) == [0.0, 10.0, 20.0]
    assert list(r) == [10.0, 0.0, 30.0]


def test_validation_errors():
    with pytest.raises(ValueError):
        RateSeries([], [], 1.0)
    with pytest.raises(ValueError):
        RateSeries([0.0, 0.0], [1.0, 2.0], 1.0)  # non-increasing
    with pytest.raises(ValueError):
        RateSeries([0.0], [-1.0], 1.0)  # negative rate
    with pytest.raises(ValueError):
        RateSeries([5.0], [1.0], 1.0)  # t_end before breakpoint
    s = make_series()
    with pytest.raises(ValueError):
        s.peak_windowed(0.0)
    with pytest.raises(ValueError):
        s.bytes_between(5, 1)
    with pytest.raises(ValueError):
        s.average(5, 5)
    with pytest.raises(ValueError):
        s.sample(0)


def test_recorder_dedups_and_overwrites():
    rec = RateRecorder("r")
    rec.record(0.0, 5.0)
    rec.record(1.0, 5.0)   # no change → dropped
    rec.record(2.0, 7.0)
    rec.record(2.0, 9.0)   # same instant → overwrite
    s = rec.close(10.0)
    assert list(s.times) == [0.0, 2.0]
    assert list(s.rates) == [5.0, 9.0]


def test_recorder_rejects_backwards_time_and_reuse():
    rec = RateRecorder("r")
    rec.record(5.0, 1.0)
    with pytest.raises(ValueError):
        rec.record(4.0, 1.0)
    rec.close(6.0)
    with pytest.raises(RuntimeError):
        rec.record(7.0, 1.0)
    with pytest.raises(RuntimeError):
        rec.close(8.0)


def test_recorder_empty_close_raises():
    with pytest.raises(RuntimeError):
        RateRecorder("r").close(1.0)


def test_aggregate_sums_overlapping_series():
    a = RateSeries([0.0], [10.0], 10.0)
    b = RateSeries([5.0], [20.0], 15.0)
    agg = aggregate_series([a, b])
    assert agg.rate_at(2.0) == 10.0
    assert agg.rate_at(7.0) == 30.0
    assert agg.rate_at(12.0) == 20.0
    assert agg.total_bytes == pytest.approx(a.total_bytes + b.total_bytes)


def test_aggregate_empty_raises():
    with pytest.raises(ValueError):
        aggregate_series([])


# -- property-based invariants ------------------------------------------------

rate_lists = st.lists(
    st.tuples(st.floats(0.01, 100.0), st.floats(0.0, 1000.0)),
    min_size=1, max_size=30)


def build(segments):
    """Build a series from (duration, rate) segments starting at t=0."""
    times, rates, t = [], [], 0.0
    for dur, rate in segments:
        times.append(t)
        rates.append(rate)
        t += dur
    return RateSeries(times, rates, t)


@given(rate_lists)
@settings(max_examples=80, deadline=None)
def test_property_windowed_peak_bounds_average(segments):
    s = build(segments)
    span = s.t_end - s.t_start
    for w in (span / 4, span / 2, span):
        if w <= 0:
            continue
        peak = s.peak_windowed(w)
        assert peak >= s.average() - 1e-6
        assert peak <= s.peak_instantaneous() + 1e-6


@given(rate_lists)
@settings(max_examples=80, deadline=None)
def test_property_peak_exceeds_any_sampled_window(segments):
    """The analytic peak dominates any brute-force sampled window mean."""
    s = build(segments)
    w = (s.t_end - s.t_start) / 3
    if w <= 0:
        return
    peak = s.peak_windowed(w)
    starts = np.linspace(s.t_start, s.t_end - w, 50)
    means = (s.cumulative_bytes(starts + w) - s.cumulative_bytes(starts)) / w
    assert peak >= means.max() - 1e-6


@given(rate_lists)
@settings(max_examples=80, deadline=None)
def test_property_total_bytes_equals_cumulative_end(segments):
    s = build(segments)
    assert s.total_bytes == pytest.approx(
        float(s.cumulative_bytes(s.t_end)), rel=1e-9, abs=1e-9)


@given(rate_lists, rate_lists)
@settings(max_examples=60, deadline=None)
def test_property_aggregate_preserves_total_bytes(seg_a, seg_b):
    a, b = build(seg_a), build(seg_b)
    agg = aggregate_series([a, b])
    assert agg.total_bytes == pytest.approx(
        a.total_bytes + b.total_bytes, rel=1e-9, abs=1e-6)
