"""Tests for connections, DNS, and fault injection."""

import pytest

from repro.net import (
    ConnectionRefused,
    DnsError,
    FaultInjector,
    FaultSchedule,
    FlowError,
    FluidNetwork,
    NameService,
    RateRecorder,
    TcpParams,
    Topology,
    Transport,
    mbps,
)
from repro.sim import Environment


def fixture(capacity=mbps(100), latency=0.01):
    env = Environment(seed=3)
    topo = Topology()
    topo.duplex_link("A", "B", capacity=capacity, latency=latency)
    net = FluidNetwork(env, topo)
    ns = NameService(env, lookup_latency=0.02)
    ns.register("b.host", "B")
    tr = Transport(env, net, ns)
    return env, topo, net, ns, tr


def test_connect_resolves_hostname_and_costs_handshake():
    env, topo, net, ns, tr = fixture()

    def main(env):
        conn = yield from tr.connect("A", "b.host")
        return (env.now, conn.dst)

    p = env.process(main(env))
    env.run()
    t, dst = p.value
    assert dst == "B"
    # DNS lookup (0.02) + 1.5 RTT (0.03)
    assert t == pytest.approx(0.05)
    assert ns.lookups == 1


def test_connect_by_node_name_skips_dns():
    env, topo, net, ns, tr = fixture()

    def main(env):
        conn = yield from tr.connect("A", "B")
        return env.now

    p = env.process(main(env))
    env.run()
    assert p.value == pytest.approx(0.03)
    assert ns.lookups == 0


def test_connect_unknown_destination_refused():
    env, topo, net, ns, tr = fixture()

    def main(env):
        with pytest.raises(ConnectionRefused):
            yield from tr.connect("A", "nowhere")
        yield env.timeout(0)

    env.process(main(env))
    env.run()


def test_handshake_cost_added():
    env, topo, net, ns, tr = fixture()

    def main(env):
        yield from tr.connect("A", "B", handshake_cost=1.0)
        return env.now

    p = env.process(main(env))
    env.run()
    assert p.value == pytest.approx(1.03)


def test_send_delivers_all_bytes():
    env, topo, net, ns, tr = fixture()
    size = mbps(100) * 5

    def main(env):
        conn = yield from tr.connect(
            "A", "B", TcpParams(buffer_bytes=2 * 2**20))
        flow = yield from conn.send(size)
        return flow.transferred

    p = env.process(main(env))
    env.run()
    assert p.value == pytest.approx(size)


def test_send_on_closed_connection_rejected():
    env, topo, net, ns, tr = fixture()

    def main(env):
        conn = yield from tr.connect("A", "B")
        conn.close()
        with pytest.raises(RuntimeError):
            yield from conn.send(1000)
        with pytest.raises(RuntimeError):
            yield from conn.request()

    env.process(main(env))
    env.run()


def test_request_costs_about_one_rtt():
    env, topo, net, ns, tr = fixture()

    def main(env):
        conn = yield from tr.connect("A", "B")
        t0 = env.now
        yield from conn.request(server_time=0.5)
        return env.now - t0

    p = env.process(main(env))
    env.run()
    assert p.value > 0.5 + 0.02  # RTT + server time
    assert p.value < 0.6


def test_stall_watchdog_aborts_dead_transfer():
    env, topo, net, ns, tr = fixture()
    link = topo.links["A<->B:fwd"]

    def outage(env):
        yield env.timeout(2.0)
        link.set_down()
        net.reallocate()

    def main(env):
        conn = yield from tr.connect(
            "A", "B", TcpParams(buffer_bytes=2**20, stall_timeout=10.0))
        with pytest.raises(FlowError, match="stalled"):
            yield from conn.send(mbps(100) * 60)
        return env.now

    env.process(outage(env))
    p = env.process(main(env))
    env.run()
    # Aborted roughly stall_timeout after the outage began.
    assert 11.0 < p.value < 16.0


def test_dns_outage_refuses_connection():
    env, topo, net, ns, tr = fixture()
    ns.add_outage(start=0.0, duration=10.0)

    def main(env):
        with pytest.raises(ConnectionRefused):
            yield from tr.connect("A", "b.host")
        yield env.timeout(11.0)
        conn = yield from tr.connect("A", "b.host")  # recovered
        return conn.dst

    p = env.process(main(env))
    env.run()
    assert p.value == "B"
    assert ns.failures == 1


def test_connect_over_dead_path_times_out_then_refused():
    env, topo, net, ns, tr = fixture()
    topo.links["A<->B:fwd"].set_down()

    def main(env):
        with pytest.raises(ConnectionRefused):
            yield from tr.connect("A", "B", TcpParams(stall_timeout=30.0))
        return env.now

    p = env.process(main(env))
    env.run()
    assert p.value == pytest.approx(30.0)  # SYN timeout elapsed


# -- fault injector -----------------------------------------------------------

def test_fault_schedule_validation():
    s = FaultSchedule()
    with pytest.raises(ValueError):
        s.link_outage("l", start=-1, duration=5)
    with pytest.raises(ValueError):
        s.link_outage("l", start=0, duration=0)
    with pytest.raises(ValueError):
        s.degrade("l", start=0, duration=5, fraction=1.5)


def test_link_outage_stalls_then_recovers():
    env, topo, net, ns, tr = fixture()
    sched = FaultSchedule().link_outage("A<->B:fwd", start=3.0, duration=4.0)
    FaultInjector(env, net, ns).install(sched)
    flow = net.transfer("A", "B", mbps(100) * 10)
    env.run()
    assert flow.finished_at == pytest.approx(14.0)  # 3 + 4 outage + 7


def test_site_outage_takes_all_site_links_down():
    env = Environment()
    topo = Topology()
    topo.add_node("dallas-r", site="dallas")
    topo.add_node("wan", site="wan")
    topo.duplex_link("dallas-r", "wan", mbps(100), 0.01)
    topo.duplex_link("wan", "lbl", mbps(100), 0.01)
    net = FluidNetwork(env, topo)
    inj = FaultInjector(env, net)
    sched = FaultSchedule().site_outage("dallas", start=2.0, duration=3.0,
                                        description="power failure")
    inj.install(sched)
    flow = net.transfer("dallas-r", "lbl", mbps(100) * 4)
    env.run()
    assert flow.finished_at == pytest.approx(7.0)
    actions = [a for _, a, _ in inj.log]
    assert actions == ["site down", "site restored"]


def test_degrade_halves_throughput():
    env, topo, net, ns, tr = fixture()
    sched = FaultSchedule().degrade("A<->B:fwd", start=0.0, duration=100.0,
                                    fraction=0.5)
    FaultInjector(env, net, ns).install(sched)
    flow = net.transfer("A", "B", mbps(100) * 5)
    env.run()
    assert flow.finished_at == pytest.approx(10.0)


def test_dns_fault_requires_name_service():
    env, topo, net, ns, tr = fixture()
    inj = FaultInjector(env, net, name_service=None)
    with pytest.raises(ValueError):
        inj.install(FaultSchedule().dns_outage(0.0, 5.0))


def test_unknown_fault_target_raises():
    env, topo, net, ns, tr = fixture()
    inj = FaultInjector(env, net, ns)
    # Targets are validated eagerly at install time.
    with pytest.raises(KeyError):
        inj.install(FaultSchedule().link_outage("nope", 1.0, 1.0))
