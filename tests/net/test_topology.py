"""Tests for topology construction and routing."""

import pytest

from repro.net import Topology, mbps


def star() -> Topology:
    t = Topology("star")
    for leaf in ["A", "B", "C"]:
        t.duplex_link(leaf, "hub", capacity=mbps(100), latency=0.005)
    return t


def test_add_node_idempotent():
    t = Topology()
    n1 = t.add_node("X", site="lbnl")
    n2 = t.add_node("X")
    assert n1 is n2
    assert n1.site == "lbnl"


def test_duplicate_link_name_rejected():
    t = Topology()
    t.add_link("A", "B", mbps(10), 0.01, name="l")
    with pytest.raises(ValueError):
        t.add_link("A", "B", mbps(10), 0.01, name="l")


def test_link_validation():
    t = Topology()
    with pytest.raises(ValueError):
        t.add_link("A", "B", -1, 0.01)
    with pytest.raises(ValueError):
        t.add_link("A", "B", mbps(10), -0.01)


def test_path_through_hub():
    t = star()
    path = t.path("A", "B")
    assert [l.src.name for l in path] == ["A", "hub"]
    assert [l.dst.name for l in path] == ["hub", "B"]


def test_path_to_self_is_empty():
    t = star()
    assert t.path("A", "A") == []


def test_path_unknown_node_raises():
    t = star()
    with pytest.raises(KeyError):
        t.path("A", "nowhere")


def test_no_path_raises():
    t = Topology()
    t.add_node("A")
    t.add_node("B")
    with pytest.raises(ValueError):
        t.path("A", "B")


def test_min_latency_route_chosen():
    t = Topology()
    t.add_link("A", "B", mbps(10), 0.100, name="slow")
    t.add_link("A", "C", mbps(10), 0.010, name="h1")
    t.add_link("C", "B", mbps(10), 0.010, name="h2")
    path = t.path("A", "B")
    assert [l.name for l in path] == ["h1", "h2"]


def test_latency_and_rtt():
    t = star()
    assert t.latency("A", "B") == pytest.approx(0.010)
    assert t.rtt("A", "B") == pytest.approx(0.020)


def test_bottleneck_capacity():
    t = Topology()
    t.add_link("A", "B", mbps(100), 0.01)
    t.add_link("B", "C", mbps(10), 0.01)
    assert t.bottleneck_capacity("A", "C") == mbps(10)
    assert t.bottleneck_capacity("A", "A") == float("inf")


def test_static_route_overrides_dijkstra():
    t = Topology()
    fast1 = t.add_link("A", "C", mbps(10), 0.010, name="f1")
    fast2 = t.add_link("C", "B", mbps(10), 0.010, name="f2")
    slow = t.add_link("A", "B", mbps(10), 0.100, name="slow")
    assert [l.name for l in t.path("A", "B")] == ["f1", "f2"]
    t.set_static_route("A", "B", [slow])
    assert [l.name for l in t.path("A", "B")] == ["slow"]


def test_static_route_validation():
    t = Topology()
    l1 = t.add_link("A", "B", mbps(10), 0.01)
    l2 = t.add_link("C", "D", mbps(10), 0.01)
    with pytest.raises(ValueError):
        t.set_static_route("A", "D", [l1, l2])  # discontinuous
    with pytest.raises(ValueError):
        t.set_static_route("A", "D", [])
    with pytest.raises(ValueError):
        t.set_static_route("B", "A", [l1])  # wrong endpoints


def test_link_down_and_restore():
    t = star()
    link = next(iter(t.links.values()))
    nominal = link.nominal_capacity
    link.set_down()
    assert not link.is_up
    assert link.capacity == 0
    link.restore()
    assert link.capacity == nominal
    link.restore(capacity=nominal / 2)
    assert link.capacity == nominal / 2


def test_routing_ignores_capacity_changes():
    t = Topology()
    direct = t.add_link("A", "B", mbps(10), 0.010, name="direct")
    t.add_link("A", "C", mbps(10), 0.02, name="d1")
    t.add_link("C", "B", mbps(10), 0.02, name="d2")
    assert [l.name for l in t.path("A", "B")] == ["direct"]
    direct.set_down()
    # The IP layer does not reroute at this timescale.
    assert [l.name for l in t.path("A", "B")] == ["direct"]


def test_to_networkx_export():
    import networkx as nx
    t = star()
    g = t.to_networkx()
    assert isinstance(g, nx.MultiDiGraph)
    assert set(g.nodes) == {"A", "B", "C", "hub"}
    assert g.number_of_edges() == 6  # 3 duplex pairs
    # Edge attributes round-trip.
    data = g.get_edge_data("A", "hub")
    (key, attrs), = data.items()
    assert attrs["capacity"] == mbps(100)
    assert attrs["latency"] == 0.005
    # Graph algorithms agree with our Dijkstra on hop structure.
    path = nx.shortest_path(g, "A", "B", weight="latency")
    assert path == ["A", "hub", "B"]
