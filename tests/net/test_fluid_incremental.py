"""Differential and hygiene tests for the incremental fluid allocator.

The incremental allocator (component-scoped recompute, same-instant
coalescing, completion heap) must be *observationally equivalent* to the
``mode="reference"`` full recompute: identical rates (to 1e-6), identical
completion times, identical snapshots. These tests replay randomized
workload scripts against both modes and compare, assert the max-min
optimality certificate on the incremental results, and pin down the
event-queue hygiene properties (no superseded-timer pile-up).
"""

import math

import numpy as np
import pytest

from repro.net import FluidNetwork, Topology, mbps
from repro.sim import Environment

SEEDS = [3, 17, 29, 101, 4242, 90210]


def clustered_topology():
    """8 disjoint star clusters plus one shared two-cluster backbone —
    plenty of independent components, and one that actually couples."""
    topo = Topology()
    for c in range(8):
        for h in range(3):
            topo.duplex_link(f"c{c}h{h}", f"c{c}core", mbps(200 + 50 * c),
                             0.001)
    topo.duplex_link("c0core", "c1core", mbps(120), 0.005, name="backbone")
    return topo


def script_workload(seed, n_actions=120, horizon=120.0):
    """A deterministic action trace both modes replay identically."""
    rng = np.random.default_rng(seed)
    actions = []
    t = 0.0
    for i in range(n_actions):
        t += float(rng.exponential(horizon / n_actions))
        kind = rng.choice(["start", "start", "start", "cap", "abort",
                           "link"])
        cluster = int(rng.integers(8))
        if kind == "start":
            a, b = rng.choice(3, size=2, replace=False)
            actions.append((t, "start", {
                "src": f"c{cluster}h{a}", "dst": f"c{cluster}h{b}",
                "size": float(rng.uniform(1, 40)) * 1e6,
                "cap": (math.inf if rng.random() < 0.4
                        else mbps(float(rng.uniform(5, 150)))),
                "name": f"w{i}",
            }))
        elif kind == "cap":
            actions.append((t, "cap", {
                "target": int(rng.integers(max(i, 1))),
                "cap": mbps(float(rng.uniform(5, 200))),
            }))
        elif kind == "abort":
            actions.append((t, "abort",
                            {"target": int(rng.integers(max(i, 1)))}))
        else:
            name = rng.choice([f"c{cluster}h0<->c{cluster}core:fwd",
                               "backbone:fwd"])
            actions.append((t, "link",
                            {"link": str(name),
                             "frac": float(rng.uniform(0.2, 1.0))}))
    return actions


def replay(mode, seed, actions):
    """Run one scripted workload; returns (net, flows-by-name)."""
    env = Environment(seed=seed)
    topo = clustered_topology()
    net = FluidNetwork(env, topo, mode=mode)
    flows = {}
    order = []

    def driver(env):
        last = 0.0
        for t, kind, arg in actions:
            if t > last:
                yield env.timeout(t - last)
            last = t
            if kind == "start":
                flow = net.transfer(arg["src"], arg["dst"], arg["size"],
                                    cap=arg["cap"], name=arg["name"])
                flow.done.defuse()
                flows[arg["name"]] = flow
                order.append(arg["name"])
            elif kind == "cap" and order:
                flows[order[arg["target"] % len(order)]].set_cap(arg["cap"])
            elif kind == "abort" and order:
                flow = flows[order[arg["target"] % len(order)]]
                if flow.active:
                    flow.abort("chaos")
            elif kind == "link":
                link = topo.links[arg["link"]]
                link.capacity = link.nominal_capacity * arg["frac"]
                net.link_updated(link)

    env.process(driver(env))
    return env, net, flows


def assert_max_min(net, topo):
    """Feasibility + the max-min optimality certificate."""
    flows = net.flows
    for link in topo.links.values():
        used = sum(f.rate for f in net.flows_on(link))
        assert used <= link.capacity * (1 + 1e-6) + 1e-9
    for f in flows:
        assert f.rate <= f.cap * (1 + 1e-9)
        if f.rate >= f.cap * (1 - 1e-6):
            continue  # cap-limited
        blocked = False
        for link in f.path:
            used = sum(g.rate for g in net.flows_on(link))
            if used >= link.capacity * (1 - 1e-6):
                biggest = max(g.rate for g in net.flows_on(link))
                if f.rate >= biggest * (1 - 1e-6):
                    blocked = True
                    break
        assert blocked, (f"flow {f.name} at {f.rate:.0f} B/s has headroom "
                         f"everywhere on its path")


@pytest.mark.parametrize("seed", SEEDS)
def test_differential_incremental_vs_reference(seed):
    """Both modes replay the same script and agree at every checkpoint."""
    actions = script_workload(seed)
    env_i, net_i, flows_i = replay("incremental", seed, actions)
    env_r, net_r, flows_r = replay("reference", seed, actions)
    horizon = max(t for t, _k, _a in actions) + 60.0
    for frac in (0.25, 0.5, 0.75, 1.0):
        t = horizon * frac
        env_i.run(until=t)
        env_r.run(until=t)
        assert flows_i.keys() == flows_r.keys()
        for name, fi in flows_i.items():
            fr = flows_r[name]
            assert fi.rate == pytest.approx(fr.rate, rel=1e-6, abs=1e-3), \
                f"{name} rate diverged at t={t}"
            assert fi.remaining == pytest.approx(fr.remaining, rel=1e-6,
                                                 abs=1.0), \
                f"{name} remaining diverged at t={t}"
            assert (fi.finished_at is None) == (fr.finished_at is None)
            if fi.finished_at is not None:
                assert fi.finished_at == pytest.approx(fr.finished_at,
                                                       rel=1e-9, abs=1e-6)
    # The incremental allocator did dramatically less filling work.
    assert net_i.reallocations <= net_r.reallocations


@pytest.mark.parametrize("seed", SEEDS[:3])
def test_differential_snapshot_and_bottlenecks_agree(seed):
    actions = script_workload(seed, n_actions=60, horizon=60.0)
    env_i, net_i, _ = replay("incremental", seed, actions)
    env_r, net_r, _ = replay("reference", seed, actions)
    for t in (20.0, 45.0):
        env_i.run(until=t)
        env_r.run(until=t)
        snap_i, snap_r = net_i.snapshot(), net_r.snapshot()
        assert snap_i["links"].keys() == snap_r["links"].keys()
        for name, (used_i, cap_i, n_i) in snap_i["links"].items():
            used_r, cap_r, n_r = snap_r["links"][name]
            assert n_i == n_r
            assert cap_i == cap_r
            assert used_i == pytest.approx(used_r, rel=1e-6, abs=1e-3)
        assert net_i.bottlenecks() == net_r.bottlenecks()


@pytest.mark.parametrize("seed", SEEDS[:4])
def test_incremental_allocation_is_max_min(seed):
    """Property: mid-run incremental allocations satisfy the max-min
    certificate on seeded random workloads."""
    actions = script_workload(seed, n_actions=80, horizon=80.0)
    env, net, _ = replay("incremental", seed, actions)
    topo = net.topology
    for t in (15.0, 40.0, 70.0):
        env.run(until=t)
        net.snapshot()  # force a flush before inspecting rates
        assert_max_min(net, topo)


def test_disjoint_components_do_not_pay_for_each_other():
    """A cap change in one cluster recomputes only that component."""
    env = Environment()
    topo = clustered_topology()
    net = FluidNetwork(env, topo)
    flows = []
    for c in range(8):
        for i in range(4):
            f = net.transfer(f"c{c}h{i % 3}", f"c{c}core", 1e15,
                             cap=mbps(10 + i))
            f.done.defuse()
            flows.append(f)
    env.run(until=1.0)
    before = net.flows_recomputed
    flows[0].set_cap(mbps(55))   # cluster 0 only
    env.run(until=2.0)
    recomputed = net.flows_recomputed - before
    # Cluster 0+1 share the backbone: at most those two clusters' flows
    # (8) are touched, never all 32.
    assert 0 < recomputed <= 8


def test_same_instant_cap_changes_coalesce():
    """N same-instant set_cap calls collapse into one filling pass."""
    env = Environment()
    topo = Topology()
    topo.duplex_link("A", "B", mbps(1000), 0.001)
    net = FluidNetwork(env, topo)
    flows = [net.transfer("A", "B", 1e15, cap=mbps(10)) for _ in range(32)]
    for f in flows:
        f.done.defuse()
    env.run(until=1.0)
    before = net.reallocations

    def burst(env):
        yield env.timeout(0.5)
        for i, f in enumerate(flows):   # 32 calls at one instant
            f.set_cap(mbps(12 + i))

    env.process(burst(env))
    env.run(until=2.0)
    assert net.reallocations - before == 1
    assert sum(f.rate for f in flows) == pytest.approx(
        sum(mbps(12 + i) for i in range(32)))


def test_event_queue_stays_bounded_under_cap_churn():
    """The original allocator heap-pushed a fresh completion timer on
    every reallocation; superseded timers piled up for long runs. With
    cancellation + skip-if-unchanged the queue stays O(active work)."""
    env = Environment()
    topo = Topology()
    topo.duplex_link("A", "B", mbps(100), 0.001)
    net = FluidNetwork(env, topo)
    flow = net.transfer("A", "B", 1e15)
    flow.done.defuse()

    def churner(env):
        k = 0
        while True:
            yield env.timeout(0.0146)
            k += 1
            # Bounce the cap so the predicted completion instant moves
            # every step — the worst case for timer rescheduling.
            flow.set_cap(mbps(40 + (k % 13) * 5))

    env.process(churner(env))
    peak = 0
    for step in range(1, 201):
        env.run(until=step * 1.0)
        peak = max(peak, env.queue_depth())
    assert net.reallocations > 10_000
    # The kernel compacts once cancelled entries outnumber live ones
    # past its 64-entry watermark, so the peak sits just above it. The
    # old allocator left every superseded timer in the heap: this same
    # run used to peak above 10,000 entries.
    assert peak < 150, f"event queue grew to {peak} entries"


def test_steady_state_reschedules_nothing():
    """Recomputes that do not move the next completion instant must not
    create new simulator timers (hygiene for modulator/idle ticks)."""
    env = Environment()
    topo = Topology()
    topo.duplex_link("A", "B", mbps(100), 0.001)
    topo.duplex_link("C", "D", mbps(100), 0.001)
    net = FluidNetwork(env, topo)
    short = net.transfer("A", "B", mbps(100) * 5)     # completes at 5 s
    slow = net.transfer("C", "D", 1e15, cap=mbps(1))  # far-future
    short.done.defuse()
    slow.done.defuse()
    env.run(until=1.0)
    before = net.timer_reschedules
    # Churn the slow component; the earliest completion (short, t=5)
    # never moves, so no timer may be created.
    def churner(env):
        for k in range(50):
            yield env.timeout(0.05)
            slow.set_cap(mbps(1 + 0.01 * (k % 3)))

    env.process(churner(env))
    env.run(until=4.0)
    assert net.timer_reschedules == before


def test_idle_link_update_is_free():
    """Capacity changes on links carrying no flows skip the allocator."""
    env = Environment()
    topo = Topology()
    topo.duplex_link("A", "B", mbps(100), 0.001)
    topo.duplex_link("C", "D", mbps(100), 0.001)
    net = FluidNetwork(env, topo)
    flow = net.transfer("A", "B", 1e12)
    flow.done.defuse()
    env.run(until=1.0)
    before = net.reallocations
    idle = topo.links["C<->D:fwd"]
    for frac in (0.5, 0.7, 0.9):
        idle.capacity = idle.nominal_capacity * frac
        net.link_updated(idle)
    env.run(until=2.0)
    assert net.reallocations == before


def test_reference_mode_rejected_unknown():
    env = Environment()
    topo = Topology()
    with pytest.raises(ValueError):
        FluidNetwork(env, topo, mode="magic")


def test_abort_vs_completion_knife_edge():
    """Aborting at the exact completion instant must not crash (the old
    implementation could double-trigger the done event)."""
    env = Environment()
    topo = Topology()
    topo.duplex_link("A", "B", mbps(100), 0.001)
    net = FluidNetwork(env, topo)
    flow = net.transfer("A", "B", mbps(100) * 5.0)  # completes at t=5

    def aborter(env):
        yield env.timeout(5.0)
        if flow.active:
            flow.abort("tie")

    env.process(aborter(env))
    flow.done.defuse()
    env.run()
    assert flow.finished_at == pytest.approx(5.0)
