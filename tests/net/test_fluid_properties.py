"""Property-based verification of max-min fairness on random networks."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FluidNetwork, Topology, mbps
from repro.sim import Environment


def random_network(draw_nodes, draw_links, draw_flows, rng):
    """Build a random connected-ish topology and flow set."""
    env = Environment()
    topo = Topology()
    nodes = [f"n{i}" for i in range(draw_nodes)]
    # Chain backbone guarantees connectivity.
    for a, b in zip(nodes, nodes[1:]):
        topo.duplex_link(a, b, mbps(float(rng.integers(10, 200))),
                         0.001)
    # Extra random links.
    for k in range(draw_links):
        i, j = rng.integers(0, draw_nodes, size=2)
        if i == j:
            continue
        try:
            topo.duplex_link(nodes[i], nodes[j],
                             mbps(float(rng.integers(10, 200))),
                             0.001, name=f"x{k}")
        except ValueError:
            pass
    net = FluidNetwork(env, topo)
    flows = []
    for f in range(draw_flows):
        i, j = rng.integers(0, draw_nodes, size=2)
        if i == j:
            continue
        cap = (math.inf if rng.random() < 0.5
               else mbps(float(rng.integers(1, 150))))
        flows.append(net.transfer(nodes[i], nodes[j], 1e15, cap=cap))
    net.reallocate()
    return env, topo, net, flows


@given(st.integers(3, 8), st.integers(0, 6), st.integers(1, 12),
       st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_property_allocation_feasible(n_nodes, n_extra, n_flows, seed):
    """No link oversubscribed; no flow above its cap."""
    rng = np.random.default_rng(seed)
    env, topo, net, flows = random_network(n_nodes, n_extra, n_flows, rng)
    for link in topo.links.values():
        used = sum(f.rate for f in net.flows_on(link))
        assert used <= link.capacity * (1 + 1e-6)
    for f in flows:
        assert f.rate <= f.cap * (1 + 1e-9)


@given(st.integers(3, 8), st.integers(0, 6), st.integers(1, 12),
       st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_property_max_min_no_headroom(n_nodes, n_extra, n_flows, seed):
    """Max-min optimality certificate: every flow is either at its own
    cap or crosses a link where it is among the largest users and the
    link is saturated (so its rate cannot be raised without lowering an
    equal-or-smaller flow)."""
    rng = np.random.default_rng(seed)
    env, topo, net, flows = random_network(n_nodes, n_extra, n_flows, rng)
    for f in flows:
        if f.rate >= f.cap * (1 - 1e-6):
            continue  # cap-limited: fine
        blocked = False
        for link in f.path:
            used = sum(g.rate for g in net.flows_on(link))
            saturated = used >= link.capacity * (1 - 1e-6)
            if saturated:
                biggest = max(g.rate for g in net.flows_on(link))
                if f.rate >= biggest * (1 - 1e-6):
                    blocked = True
                    break
        assert blocked, (f"flow {f.name} at {f.rate:.0f} has headroom "
                         f"everywhere on its path")


@given(st.integers(2, 6), st.integers(1, 8), st.integers(0, 10_000))
@settings(max_examples=40, deadline=None)
def test_property_conservation_through_completion(n_nodes, n_flows, seed):
    """Running random finite flows to completion delivers exactly the
    requested bytes (fluid accounting conserves volume)."""
    rng = np.random.default_rng(seed)
    env = Environment()
    topo = Topology()
    nodes = [f"n{i}" for i in range(n_nodes)]
    for a, b in zip(nodes, nodes[1:]):
        topo.duplex_link(a, b, mbps(50), 0.001)
    net = FluidNetwork(env, topo)
    sizes, flows = [], []
    for _ in range(n_flows):
        i, j = rng.integers(0, n_nodes, size=2)
        if i == j:
            continue
        size = float(rng.integers(1, 50)) * 1e6
        sizes.append(size)
        flows.append(net.transfer(nodes[i], nodes[j], size))
    env.run()
    for f, size in zip(flows, sizes):
        assert f.finished_at is not None
        assert f.transferred == pytest.approx(size, rel=1e-9)
