"""Tests for fault schedules, the injector, and composing faults."""

import pytest

from repro.net import (
    Fault,
    FaultInjector,
    FaultSchedule,
    FluidNetwork,
    NameService,
    Topology,
    mbps,
)
from repro.sim import Environment


def fixture():
    env = Environment(seed=7)
    topo = Topology()
    topo.duplex_link("A", "B", capacity=mbps(100), latency=0.01,
                     name="ab")
    topo.duplex_link("B", "C", capacity=mbps(50), latency=0.01,
                     name="bc")
    net = FluidNetwork(env, topo)
    ns = NameService(env, lookup_latency=0.02)
    ns.register("c.host", "C")
    return env, topo, net, ns


# -- Fault / FaultSchedule validation ---------------------------------------

def test_fault_rejects_bad_start_and_duration():
    with pytest.raises(ValueError):
        Fault("link", "ab:fwd", start=-1.0, duration=5.0)
    with pytest.raises(ValueError):
        Fault("link", "ab:fwd", start=0.0, duration=0.0)
    with pytest.raises(ValueError):
        Fault("link", "ab:fwd", start=0.0, duration=-3.0)


def test_fault_rejects_non_finite_start_and_duration():
    """NaN/inf windows would silently wedge the injector's timeline —
    they must be rejected at construction, including via the builders."""
    nan, inf = float("nan"), float("inf")
    for start, duration in ((nan, 5.0), (inf, 5.0), (0.0, nan),
                            (0.0, inf), (nan, nan)):
        with pytest.raises(ValueError):
            Fault("link", "ab:fwd", start=start, duration=duration)
    with pytest.raises(ValueError):
        FaultSchedule().corrupt_transfer("ab:fwd", nan, 1.0)
    with pytest.raises(ValueError):
        FaultSchedule().link_outage("ab:fwd", 0.0, inf)
    with pytest.raises(ValueError):
        FaultSchedule().rm_crash("campaign", inf, 1.0)


def test_fault_rejects_non_finite_degrade_fraction():
    with pytest.raises(ValueError):
        Fault("degrade", "ab:fwd", 0.0, 5.0, fraction=float("nan"))


def test_corrupt_replica_requires_path():
    with pytest.raises(ValueError):
        Fault("corrupt_replica", "gridftp.x.gov", 0.0, 5.0)


def test_fault_rejects_bad_degrade_fraction():
    with pytest.raises(ValueError):
        Fault("degrade", "ab:fwd", 0.0, 5.0, fraction=1.0)
    with pytest.raises(ValueError):
        Fault("degrade", "ab:fwd", 0.0, 5.0, fraction=-0.1)


def test_fault_rejects_bad_mode():
    with pytest.raises(ValueError):
        Fault("directory", "mds", 0.0, 5.0, mode="explode")


def test_control_fault_needs_target():
    for kind in ("server", "directory", "hrm"):
        with pytest.raises(ValueError):
            Fault(kind, "", 0.0, 5.0)


def test_schedule_builders_accumulate():
    sched = (FaultSchedule()
             .link_outage("ab:fwd", 1.0, 2.0)
             .site_outage("B", 1.0, 2.0)
             .dns_outage(1.0, 2.0)
             .degrade("ab:fwd", 1.0, 2.0, fraction=0.5)
             .server_outage("gridftp.x.gov", 1.0, 2.0)
             .mds_outage(1.0, 2.0)
             .catalog_outage(1.0, 2.0, mode="hang")
             .hrm_outage("hrm-x", 1.0, 2.0)
             .corrupt_transfer("ab:fwd", 1.0, 2.0)
             .corrupt_replica("gridftp.x.gov", "f.nc", 1.0, 2.0)
             .truncate_stage("hrm-x", 1.0, 2.0)
             .rm_crash("campaign", 1.0, 2.0))
    assert len(sched) == 12
    kinds = [f.kind for f in sched.faults]
    assert kinds == ["link", "site", "dns", "degrade", "server",
                     "directory", "directory", "hrm", "corrupt",
                     "corrupt_replica", "truncate_stage", "rm"]


# -- injector target validation ---------------------------------------------

def test_injector_validates_targets_at_install():
    env, topo, net, ns = fixture()
    inj = FaultInjector(env, net, ns)
    with pytest.raises(KeyError):
        inj.install(FaultSchedule().site_outage("mars", 1.0, 1.0))
    with pytest.raises(KeyError):
        inj.install(FaultSchedule().server_outage("gridftp.x.gov",
                                                  1.0, 1.0))
    with pytest.raises(KeyError):
        inj.install(FaultSchedule().mds_outage(1.0, 1.0))
    with pytest.raises(KeyError):
        inj.install(FaultSchedule().hrm_outage("hrm-x", 1.0, 1.0))


def test_injector_validates_integrity_fault_targets():
    env, topo, net, ns = fixture()
    inj = FaultInjector(env, net, ns)
    with pytest.raises(KeyError):
        inj.install(FaultSchedule().corrupt_transfer("nope:fwd",
                                                     1.0, 1.0))
    with pytest.raises(KeyError):
        inj.install(FaultSchedule().corrupt_replica("gridftp.x.gov",
                                                    "f.nc", 1.0, 1.0))
    with pytest.raises(KeyError):
        inj.install(FaultSchedule().truncate_stage("hrm-x", 1.0, 1.0))
    with pytest.raises(KeyError):
        inj.install(FaultSchedule().rm_crash("campaign", 1.0, 1.0))


def test_dns_fault_requires_name_service():
    env, topo, net, ns = fixture()
    inj = FaultInjector(env, net)
    with pytest.raises(ValueError):
        inj.install(FaultSchedule().dns_outage(1.0, 1.0))


# -- site / dns / degrade execution paths ----------------------------------

def test_site_outage_downs_every_touching_link():
    env, topo, net, ns = fixture()
    inj = FaultInjector(env, net, ns)
    inj.install(FaultSchedule().site_outage("B", 1.0, 5.0))
    env.run(until=2.0)
    affected = [l for l in topo.links.values()
                if l.src.site == "B" or l.dst.site == "B"]
    assert affected and all(not l.is_up for l in affected)
    env.run(until=10.0)
    assert all(l.is_up for l in topo.links.values())


def test_dns_outage_window_blocks_resolution():
    env, topo, net, ns = fixture()
    inj = FaultInjector(env, net, ns)
    inj.install(FaultSchedule().dns_outage(1.0, 5.0))

    from repro.net.dns import DnsError

    def probe(at):
        yield env.timeout(at - env.now)
        try:
            yield from ns.resolve("c.host")
            return (at, True)
        except DnsError:
            return (at, False)

    p1 = env.process(probe(2.0))
    env.run()
    assert p1.value == (2.0, False)


def test_degrade_reduces_and_restores_capacity():
    env, topo, net, ns = fixture()
    link = topo.links["ab:fwd"]
    inj = FaultInjector(env, net, ns)
    inj.install(FaultSchedule().degrade("ab:fwd", 1.0, 5.0, fraction=0.25))
    env.run(until=2.0)
    assert link.capacity == pytest.approx(link.nominal_capacity * 0.25)
    env.run(until=10.0)
    assert link.capacity == pytest.approx(link.nominal_capacity)


# -- overlapping faults compose (reference-counted link state) ---------------

def test_overlapping_outages_do_not_restore_early():
    env, topo, net, ns = fixture()
    link = topo.links["ab:fwd"]
    inj = FaultInjector(env, net, ns)
    # [1, 6) and [3, 10): the first restore at t=6 must NOT bring the
    # link back while the second outage still holds it.
    inj.install(FaultSchedule()
                .link_outage("ab:fwd", 1.0, 5.0)
                .link_outage("ab:fwd", 3.0, 7.0))
    env.run(until=7.0)
    assert not link.is_up
    env.run(until=11.0)
    assert link.is_up
    assert link.capacity == pytest.approx(link.nominal_capacity)


def test_outage_overlapping_degrade_composes():
    env, topo, net, ns = fixture()
    link = topo.links["ab:fwd"]
    inj = FaultInjector(env, net, ns)
    # degrade [1, 11); outage [2, 6). After the outage lifts the link
    # must return to the degraded rate, not nominal.
    inj.install(FaultSchedule()
                .degrade("ab:fwd", 1.0, 10.0, fraction=0.5)
                .link_outage("ab:fwd", 2.0, 4.0))
    env.run(until=3.0)
    assert link.capacity == 0.0
    env.run(until=8.0)
    assert link.capacity == pytest.approx(link.nominal_capacity * 0.5)
    env.run(until=12.0)
    assert link.capacity == pytest.approx(link.nominal_capacity)


def test_stacked_degrades_apply_most_severe():
    env, topo, net, ns = fixture()
    link = topo.links["ab:fwd"]
    link.degrade_hold(0.5)
    link.degrade_hold(0.2)
    assert link.capacity == pytest.approx(link.nominal_capacity * 0.2)
    link.release_degrade(0.2)
    assert link.capacity == pytest.approx(link.nominal_capacity * 0.5)
    link.release_degrade(0.5)
    assert link.capacity == pytest.approx(link.nominal_capacity)
    assert not link.faulted


def test_explicit_restore_clears_all_holds():
    env, topo, net, ns = fixture()
    link = topo.links["ab:fwd"]
    link.set_down()
    link.degrade_hold(0.5)
    # The capacity-override form (bonding/upgrade scenarios) forces the
    # link regardless of held faults.
    link.restore(capacity=mbps(200))
    assert link.capacity == pytest.approx(mbps(200))
    assert not link.faulted


# -- control-plane fault execution ------------------------------------------

def test_server_fault_crashes_and_restarts():
    env, topo, net, ns = fixture()

    class FakeServer:
        def __init__(self):
            self.up = True
            self.events = []

        def crash(self):
            self.up = False
            self.events.append(("crash", env.now))

        def restart(self):
            self.up = True
            self.events.append(("restart", env.now))

    server = FakeServer()
    inj = FaultInjector(env, net, ns,
                        servers={"gridftp.x.gov": server})
    inj.install(FaultSchedule().server_outage("gridftp.x.gov", 2.0, 3.0))
    env.run(until=10.0)
    assert server.events == [("crash", 2.0), ("restart", 5.0)]
    assert server.up


def test_hrm_fault_fails_and_restores():
    env, topo, net, ns = fixture()

    class FakeHrm:
        def __init__(self):
            self.down = False
            self.events = []

        def fail_staging(self):
            self.down = True
            self.events.append(("down", env.now))

        def restore(self):
            self.down = False
            self.events.append(("up", env.now))

    hrm = FakeHrm()
    inj = FaultInjector(env, net, ns, hrms={"hrm-x": hrm})
    inj.install(FaultSchedule().hrm_outage("hrm-x", 1.0, 4.0))
    env.run(until=10.0)
    assert hrm.events == [("down", 1.0), ("up", 5.0)]


def test_directory_fault_schedules_outage_window():
    env, topo, net, ns = fixture()
    from repro.ldap.directory import DirectoryServer, DirectoryUnavailable
    directory = DirectoryServer(env, "mds-test")
    directory.add("mds=x", {"objectclass": "mds"})
    inj = FaultInjector(env, net, ns, directories={"mds": directory})
    inj.install(FaultSchedule().mds_outage(1.0, 5.0, mode="fail"))

    def reader(at):
        yield env.timeout(at - env.now)
        try:
            yield from directory.read("mds=x")
            return True
        except DirectoryUnavailable:
            return False

    p_in = env.process(reader(2.0))
    env.run()
    p_out = env.process(reader(20.0))
    env.run()
    assert p_in.value is False
    assert p_out.value is True
    assert directory.outage_hits == 1


def test_directory_hang_mode_blocks_until_window_ends():
    env, topo, net, ns = fixture()
    from repro.ldap.directory import DirectoryServer
    directory = DirectoryServer(env, "mds-test", base_latency=0.005)
    directory.add("mds=x", {"objectclass": "mds"})
    directory.add_outage(1.0, 4.0, mode="hang")

    def reader():
        yield env.timeout(2.0)
        entry = yield from directory.read("mds=x")
        return (env.now, entry.dn)

    p = env.process(reader())
    env.run()
    t, dn = p.value
    # Blocked from t=2 to the window end at t=5, then the normal latency.
    assert t == pytest.approx(5.005)


# -- integrity fault execution ----------------------------------------------

def test_corrupt_transfer_window_opens_and_closes():
    env, topo, net, ns = fixture()
    link = topo.links["ab:fwd"]
    inj = FaultInjector(env, net, ns)
    inj.install(FaultSchedule().corrupt_transfer("ab:fwd", 1.0, 4.0))
    assert not link.corrupting
    env.run(until=2.0)
    assert link.corrupting
    # A corrupting window degrades data, not capacity.
    assert link.capacity == pytest.approx(link.nominal_capacity)
    env.run(until=10.0)
    assert not link.corrupting


def test_overlapping_corrupt_windows_refcount():
    env, topo, net, ns = fixture()
    link = topo.links["ab:fwd"]
    inj = FaultInjector(env, net, ns)
    # [1, 6) and [3, 10): the first close must not end the second.
    inj.install(FaultSchedule()
                .corrupt_transfer("ab:fwd", 1.0, 5.0)
                .corrupt_transfer("ab:fwd", 3.0, 7.0))
    env.run(until=7.0)
    assert link.corrupting
    env.run(until=11.0)
    assert not link.corrupting


def test_corrupt_replica_marks_file_at_rest():
    from repro.data.digest import file_digest, is_pristine
    from repro.storage import FileObject

    env, topo, net, ns = fixture()

    class FakeServer:
        def __init__(self):
            self.file = FileObject("f.nc", 100)

        def corrupt_file(self, path, tag="at-rest"):
            from repro.data.digest import add_mark
            if path != self.file.name:
                raise KeyError(path)
            return add_mark(self.file, tag)

    server = FakeServer()
    clean = file_digest(server.file)
    inj = FaultInjector(env, net, ns,
                        servers={"gridftp.x.gov": server})
    inj.install(FaultSchedule().corrupt_replica(
        "gridftp.x.gov", "f.nc", 2.0, 1.0))
    env.run(until=5.0)
    assert not is_pristine(server.file)
    assert file_digest(server.file) != clean


def test_corrupt_replica_missing_file_is_skipped_not_fatal():
    env, topo, net, ns = fixture()

    class FakeServer:
        def corrupt_file(self, path, tag="at-rest"):
            raise KeyError(path)

    inj = FaultInjector(env, net, ns,
                        servers={"gridftp.x.gov": FakeServer()})
    inj.install(FaultSchedule().corrupt_replica(
        "gridftp.x.gov", "absent.nc", 1.0, 1.0))
    env.run(until=5.0)  # must not raise out of the injector process


def test_truncate_stage_toggles_hrm_flag():
    env, topo, net, ns = fixture()

    class FakeHrm:
        def __init__(self):
            self.truncating = False

        def begin_truncating(self):
            self.truncating = True

        def end_truncating(self):
            self.truncating = False

    hrm = FakeHrm()
    inj = FaultInjector(env, net, ns, hrms={"hrm-x": hrm})
    inj.install(FaultSchedule().truncate_stage("hrm-x", 1.0, 4.0))
    env.run(until=2.0)
    assert hrm.truncating
    env.run(until=10.0)
    assert not hrm.truncating


def test_rm_crash_fault_kills_and_restarts_crashable():
    env, topo, net, ns = fixture()

    class FakeCampaign:
        def __init__(self):
            self.events = []

        def crash(self):
            self.events.append(("crash", env.now))

        def restart(self):
            self.events.append(("restart", env.now))

    camp = FakeCampaign()
    inj = FaultInjector(env, net, ns, crashables={"campaign": camp})
    inj.install(FaultSchedule().rm_crash("campaign", 2.0, 3.0))
    env.run(until=10.0)
    assert camp.events == [("crash", 2.0), ("restart", 5.0)]
