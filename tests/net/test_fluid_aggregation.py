"""Flow aggregation: many same-path transfers as one fluid class.

Covers activation (threshold, eligibility), the statistical demux
(per-member byte progress and completion instants), weighted max-min
fairness against exact flows, mid-flight cap changes, aborts, and the
differential contract: for members with equal caps the aggregate model
reproduces the exact per-flow model to float precision.
"""

import math

import pytest

from repro.net.fluid import FlowError, FluidNetwork
from repro.net.recorder import RateRecorder
from repro.net.topology import Topology
from repro.sim.core import Environment

MB = 1e6  # bytes; keep rate arithmetic in round decimal numbers


def make_net(threshold, capacity=10 * MB):
    env = Environment(seed=1)
    topo = Topology()
    topo.duplex_link("a", "b", capacity, 0.001)
    net = FluidNetwork(env, topo, aggregation_threshold=threshold)
    return env, net


def test_threshold_gates_activation():
    env, net = make_net(threshold=3)
    f1 = net.transfer("a", "b", 100 * MB, cap=2 * MB)
    f2 = net.transfer("a", "b", 100 * MB, cap=2 * MB)
    assert net.aggregates_created == 0      # below threshold: exact
    m3 = net.transfer("a", "b", 100 * MB, cap=2 * MB)
    assert net.aggregates_created == 1      # third same-path flow joins
    assert net.aggregate_joins == 1
    m4 = net.transfer("a", "b", 100 * MB, cap=2 * MB)
    assert net.aggregates_created == 1      # same aggregate, new member
    assert net.aggregate_joins == 2
    for f in (f1, f2, m3, m4):
        f.done.defuse()
        assert f.active


def test_ineligible_transfers_stay_exact():
    env, net = make_net(threshold=1)
    # Zero-byte: completes instantly, never aggregated.
    z = net.transfer("a", "b", 0.0)
    assert not z.active
    # Recorded flows carry a per-flow rate series: exact path only.
    r = net.transfer("a", "b", MB, cap=MB, recorder=RateRecorder("r"))
    r.done.defuse()
    # Cap-less flows have no demux weight: exact path only.
    u = net.transfer("a", "b", MB)
    u.done.defuse()
    assert net.aggregates_created == 0
    # An eligible transfer on the same path still aggregates.
    m = net.transfer("a", "b", MB, cap=MB)
    m.done.defuse()
    assert net.aggregates_created == 1


def test_homogeneous_members_match_exact_model_exactly():
    """Equal-cap members: the statistical demux is not approximate."""
    done_agg, done_exact = {}, {}
    for threshold, out in ((1, done_agg), (None, done_exact)):
        env, net = make_net(threshold)
        for i in range(8):
            f = net.transfer("a", "b", 10 * MB, cap=2 * MB, name=f"u{i}")
            f.done.add_callback(
                lambda ev, i=i, env=env: out.setdefault(i, env.now))
        env.run()
    assert done_agg == done_exact
    # 8 flows x 2 MB/s caps over a 10 MB/s link -> 1.25 MB/s each.
    assert all(abs(t - 8.0) < 1e-9 for t in done_agg.values())


def test_heterogeneous_member_completions_follow_weights():
    """Members drain in proportion to their caps; completions land at
    the aggregate's virtual-time thresholds (the documented statistical
    approximation)."""
    env, net = make_net(threshold=1)
    finished = {}
    for name, cap in (("m2a", 2 * MB), ("m2b", 2 * MB), ("m6", 6 * MB)):
        f = net.transfer("a", "b", 10 * MB, cap=cap, name=name)
        f.done.add_callback(
            lambda ev, name=name, env=env: finished.setdefault(name, env.now))
    env.run()
    # W = 10 MB/s fills the link: member rates equal their caps, so m6
    # finishes at 10/6 s; its weight then redistributes and the two
    # 2 MB/s members (cap-bound again at W = 4) finish together at 5 s.
    assert abs(finished["m6"] - 10 / 6) < 1e-9
    assert abs(finished["m2a"] - 5.0) < 1e-9
    assert finished["m2a"] == finished["m2b"]


def test_member_views_and_progress():
    env, net = make_net(threshold=1)
    m = net.transfer("a", "b", 10 * MB, cap=4 * MB, name="m")
    m.done.defuse()
    env.run(until=1.0)
    assert m.active
    assert abs(m.rate - 4 * MB) < 1e-6
    assert abs(m.progress() - 4 * MB) < 1e-6
    assert abs(m.transferred - 4 * MB) < 1e-6
    assert abs(m.remaining - 6 * MB) < 1e-6
    env.run(until=2.5)
    assert not m.active
    assert m.remaining == 0.0
    assert abs(m.finished_at - 2.5) < 1e-9


def test_member_set_cap_reweights_mid_flight():
    env, net = make_net(threshold=1)
    m1 = net.transfer("a", "b", 10 * MB, cap=4 * MB, name="m1")
    m2 = net.transfer("a", "b", 10 * MB, cap=4 * MB, name="m2")
    m1.done.defuse(), m2.done.defuse()
    env.run(until=1.0)      # 4 MB each delivered
    m1.set_cap(1 * MB)
    env.run(until=2.0)      # m1 +1 MB, m2 +4 MB
    assert abs(m1.transferred - 5 * MB) < 1e-6
    assert abs(m2.transferred - 8 * MB) < 1e-6
    env.run()
    assert abs(m2.finished_at - 2.5) < 1e-9
    # m1 held 5.5 MB when m2 finished; the tail drains at its 1 MB/s cap.
    assert abs(m1.finished_at - 7.0) < 1e-9


def test_member_abort_fails_only_that_member():
    env, net = make_net(threshold=1)
    m1 = net.transfer("a", "b", 10 * MB, cap=5 * MB, name="m1")
    m2 = net.transfer("a", "b", 10 * MB, cap=5 * MB, name="m2")
    failures = []
    m1.done.add_callback(
        lambda ev: failures.append(ev.exception) if not ev.ok else None)
    m1.done.defuse()
    m2.done.defuse()
    env.run(until=1.0)
    m1.abort("user hit ^C")
    assert not m1.active
    assert abs(m1.transferred - 5 * MB) < 1e-6  # bytes settled at abort
    env.run()
    assert len(failures) == 1 and isinstance(failures[0], FlowError)
    # The survivor inherits the whole link (still cap-bound at 5 MB/s).
    assert abs(m2.finished_at - 2.0) < 1e-9


def test_network_abort_of_aggregate_fails_every_member():
    env, net = make_net(threshold=1)
    members = [net.transfer("a", "b", 10 * MB, cap=2 * MB, name=f"u{i}")
               for i in range(4)]
    outcomes = []
    for m in members:
        m.done.add_callback(lambda ev: outcomes.append(not ev.ok))
        m.done.defuse()
    agg = next(iter(net._aggregates.values()))
    agg.done.defuse()
    env.run(until=0.5)
    net.abort(agg, "path lost")
    env.run()
    assert outcomes == [True] * 4
    assert not net._aggregates


def test_aggregate_shares_link_by_member_count():
    """Weighted max-min: an aggregate of k members takes k shares, so a
    mixed exact/aggregate link converges to the exact allocation."""
    env, net = make_net(threshold=3, capacity=8 * MB)
    exact = [net.transfer("a", "b", 1e12, cap=100 * MB, name=f"e{i}")
             for i in range(2)]
    members = [net.transfer("a", "b", 1e12, cap=100 * MB, name=f"m{i}")
               for i in range(2)]
    for f in exact + members:
        f.done.defuse()
    assert net.aggregates_created == 1
    env.run(until=0.1)
    # 4 logical users on an 8 MB/s link -> 2 MB/s each, regardless of
    # how they are batched into fluid classes.
    for f in exact:
        assert abs(f.rate - 2 * MB) < 1e-6
    for m in members:
        assert abs(m.rate - 2 * MB) < 1e-6


def test_aggregate_retires_and_path_count_resets():
    env, net = make_net(threshold=2)
    a = net.transfer("a", "b", MB, cap=MB, name="a")
    b = net.transfer("a", "b", MB, cap=MB, name="b")
    a.done.defuse(), b.done.defuse()
    assert net.aggregates_created == 1
    env.run()
    assert not net._aggregates            # drained aggregate retired
    assert not a.active and not b.active
    # A fresh wave behaves like the first: one exact, then a new class.
    c = net.transfer("a", "b", MB, cap=MB, name="c")
    d = net.transfer("a", "b", MB, cap=MB, name="d")
    c.done.defuse(), d.done.defuse()
    assert net.aggregates_created == 2
    env.run()
    assert not c.active and not d.active


def test_threshold_validation():
    env = Environment()
    topo = Topology()
    topo.duplex_link("a", "b", MB, 0.001)
    with pytest.raises(ValueError):
        FluidNetwork(env, topo, aggregation_threshold=0)


def test_infinite_cap_member_is_rejected_from_aggregation():
    """A capless transfer cannot carry a demux weight — it must take
    the exact path even when an aggregate already exists."""
    env, net = make_net(threshold=1)
    m = net.transfer("a", "b", 10 * MB, cap=2 * MB)
    m.done.defuse()
    assert net.aggregates_created == 1
    u = net.transfer("a", "b", 10 * MB, cap=math.inf)
    u.done.defuse()
    assert net.aggregate_joins == 1       # u did not join
    env.run()
    assert not m.active and not u.active
