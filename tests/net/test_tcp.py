"""Tests for the TCP window model."""

import pytest

from repro.net import (
    FluidNetwork,
    RateRecorder,
    TcpParams,
    TcpStream,
    Topology,
    bdp_buffer_size,
    mbps,
    to_mbps,
)
from repro.sim import Environment


def net_fixture(capacity=mbps(1000), latency=0.025):
    env = Environment(seed=7)
    topo = Topology()
    topo.duplex_link("A", "B", capacity=capacity, latency=latency)
    return env, topo, FluidNetwork(env, topo)


def run_transfer(env, net, nbytes, params, rng=None):
    rec = RateRecorder("t")
    rtt = net.topology.rtt("A", "B")
    stream = TcpStream(env, rtt, params, rng=rng)
    flow = net.transfer("A", "B", nbytes, cap=stream.window_cap,
                        recorder=rec)
    env.process(stream.drive(flow))
    env.run(until=flow.done)
    return rec.close(env.now), stream


def test_bdp_formula():
    # 100 Mb/s at 50 ms → 625000 bytes in flight.
    assert bdp_buffer_size(mbps(100), 0.050) == pytest.approx(625000.0)
    with pytest.raises(ValueError):
        bdp_buffer_size(-1, 0.1)


def test_paper_buffer_rule_of_thumb():
    """§7: Buffer KB = Mb/s × ms × 1024/1000/8 → 1 MB covers 500 Mb/s @ 16 ms."""
    buf = bdp_buffer_size(mbps(500), 0.016)
    assert buf == pytest.approx(1_000_000, rel=0.01)  # ≈1 MB


def test_window_limited_throughput():
    """Steady-state rate equals buffer/RTT when the pipe is fatter."""
    env, topo, net = net_fixture(capacity=mbps(1000), latency=0.025)
    params = TcpParams(buffer_bytes=64 * 1024)
    series, stream = run_transfer(env, net, 50 * 2**20, params)
    expected = 64 * 1024 / 0.050
    # Tail of the transfer runs at the window cap (the final breakpoint is
    # the 0-rate mark at completion, so look just before the end).
    assert series.rate_at(series.t_end - 1e-6) == pytest.approx(
        expected, rel=1e-6)


def test_bigger_buffer_faster_transfer():
    results = {}
    for buf in (64 * 1024, 1024 * 1024):
        env, topo, net = net_fixture(capacity=mbps(622), latency=0.025)
        series, _ = run_transfer(env, net, 200 * 2**20,
                                 TcpParams(buffer_bytes=buf))
        results[buf] = series.average()
    assert results[1024 * 1024] > 5 * results[64 * 1024]


def test_slow_start_ramp_visible():
    env, topo, net = net_fixture()
    params = TcpParams(buffer_bytes=1024 * 1024)
    series, _ = run_transfer(env, net, 100 * 2**20, params)
    # Rate strictly grows over the first few segments (doubling per RTT).
    first_rates = series.rates[:4]
    assert all(b > a for a, b in zip(first_rates, first_rates[1:]))
    assert series.rates[0] == pytest.approx(params.init_cwnd / 0.050)


def test_short_transfer_never_reaches_cap():
    """A transfer smaller than the ramp never sees full window speed —
    the mechanism behind Figure 8's inter-transfer dips."""
    env, topo, net = net_fixture()
    params = TcpParams(buffer_bytes=4 * 2**20)
    series, stream = run_transfer(env, net, 256 * 1024, params)
    assert series.peak_instantaneous() < stream.max_window / 0.050


def test_warm_stream_skips_slow_start():
    """Reusing a stream (data-channel caching) starts at the warm window."""
    env, topo, net = net_fixture()
    params = TcpParams(buffer_bytes=1024 * 1024)
    rtt = topo.rtt("A", "B")
    stream = TcpStream(env, rtt, params)
    # First transfer warms the window.
    f1 = net.transfer("A", "B", 64 * 2**20, cap=stream.window_cap)
    env.process(stream.drive(f1))
    env.run(until=f1.done)
    assert stream.cwnd == pytest.approx(params.buffer_bytes)
    rec = RateRecorder("warm")
    f2 = net.transfer("A", "B", 16 * 2**20, cap=stream.window_cap,
                      recorder=rec)
    env.process(stream.drive(f2))
    env.run(until=f2.done)
    series = rec.close(env.now)
    assert series.rates[0] == pytest.approx(params.buffer_bytes / 0.050)


def test_reset_cools_window():
    env, topo, net = net_fixture()
    stream = TcpStream(env, 0.05, TcpParams(buffer_bytes=1024 * 1024))
    stream.cwnd = 500000.0
    stream.losses = 3
    stream.reset()
    assert stream.cwnd == stream.params.init_cwnd
    assert stream.losses == 0


def test_losses_reduce_throughput():
    lossless = None
    lossy = None
    for loss_rate in (0.0, 2.0):
        env, topo, net = net_fixture(capacity=mbps(622))
        rng = env.rng.stream("tcp.loss")
        params = TcpParams(buffer_bytes=1024 * 1024, loss_rate=loss_rate)
        series, stream = run_transfer(env, net, 200 * 2**20, params, rng=rng)
        if loss_rate == 0:
            lossless = series.average()
        else:
            lossy = series.average()
            assert stream.losses > 0
    assert lossy < lossless


def test_loss_rate_without_rng_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        TcpStream(env, 0.05, TcpParams(loss_rate=1.0))


def test_params_validation():
    with pytest.raises(ValueError):
        TcpParams(mss=0)
    with pytest.raises(ValueError):
        TcpParams(buffer_bytes=100)  # smaller than MSS
    with pytest.raises(ValueError):
        TcpParams(loss_rate=-1)
    with pytest.raises(ValueError):
        TcpParams(recovery_steps=0)
    with pytest.raises(ValueError):
        TcpStream(Environment(), 0.0, TcpParams())


def test_parallel_streams_beat_single_under_loss():
    """The paper's core rationale for parallel transfers [15]: with random
    loss, N streams recover independently and keep aggregate rate high."""
    def run(n_streams):
        env = Environment(seed=11)
        topo = Topology()
        topo.duplex_link("A", "B", capacity=mbps(622), latency=0.030)
        net = FluidNetwork(env, topo)
        rtt = topo.rtt("A", "B")
        total = 400 * 2**20
        recs, flows = [], []
        for i in range(n_streams):
            params = TcpParams(buffer_bytes=1024 * 1024, loss_rate=0.5)
            stream = TcpStream(env, rtt, params,
                               rng=env.rng.spawn("loss", i))
            rec = RateRecorder(f"s{i}")
            flow = net.transfer("A", "B", total / n_streams,
                                cap=stream.window_cap, recorder=rec)
            env.process(stream.drive(flow))
            recs.append(rec)
            flows.append(flow)
        env.run()
        return max(f.finished_at for f in flows)

    t1 = run(1)
    t4 = run(4)
    assert t4 < t1
