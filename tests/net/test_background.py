"""Tests for cross-traffic generation and link-load modulation."""

import pytest

from repro.net import (
    BackgroundTraffic,
    FluidNetwork,
    LinkLoadModulator,
    Topology,
    mbps,
)
from repro.sim import Environment


def fixture(capacity=mbps(100)):
    env = Environment(seed=4)
    topo = Topology()
    topo.duplex_link("A", "B", capacity, 0.005)
    return env, topo, FluidNetwork(env, topo)


def test_background_traffic_offered_load():
    env, topo, net = fixture()
    bg = BackgroundTraffic(env, net, "A", "B", arrival_rate=2.0,
                           mean_bytes=mbps(10), flow_cap=mbps(50),
                           rng=env.rng.stream("bg"))
    assert bg.offered_load == pytest.approx(mbps(20))
    bg.start()
    bg.start()  # idempotent
    env.run(until=120.0)
    assert bg.flows_started > 100
    # Empirical offered load within 50% of nominal over 2 minutes.
    empirical = bg.bytes_offered / 120.0
    assert empirical == pytest.approx(bg.offered_load, rel=0.5)


def test_background_traffic_contends_with_foreground():
    env, topo, net = fixture()
    bg = BackgroundTraffic(env, net, "A", "B", arrival_rate=5.0,
                           mean_bytes=mbps(100) * 2, flow_cap=mbps(100),
                           rng=env.rng.stream("bg"))
    bg.start()
    env.run(until=30.0)  # let background build up
    fg = net.transfer("A", "B", mbps(100) * 30)
    net.reallocate()
    # Foreground gets far less than the full link.
    assert fg.rate < mbps(60)
    fg.abort()
    fg.done.defuse()
    env.run(until=35.0)


def test_background_traffic_validation():
    env, topo, net = fixture()
    with pytest.raises(ValueError):
        BackgroundTraffic(env, net, "A", "B", arrival_rate=0,
                          mean_bytes=1, flow_cap=1,
                          rng=env.rng.stream("x"))


def test_modulator_varies_capacity_around_mean():
    env, topo, net = fixture()
    link = topo.links["A<->B:fwd"]
    mod = LinkLoadModulator(env, net, link, mean_load=0.6,
                            rng=env.rng.stream("mod"),
                            volatility=0.05, correlation=0.8,
                            interval=1.0)
    mod.start()
    mod.start()  # idempotent
    samples = []

    def sampler(env):
        while env.now < 300:
            samples.append(link.capacity)
            yield env.timeout(1.0)

    env.process(sampler(env))
    env.run(until=300.0)
    assert mod.samples >= 299
    mean_cap = sum(samples) / len(samples)
    # Mean residual ≈ (1 - mean_load) × nominal.
    assert mean_cap == pytest.approx(0.4 * link.nominal_capacity,
                                     rel=0.25)
    # It actually varies.
    assert max(samples) > min(samples) * 1.2
    # Clamps respected.
    assert max(samples) <= link.nominal_capacity * 0.95 + 1
    assert min(samples) >= link.nominal_capacity * 0.03 - 1


def test_modulator_squeezes_foreground_flow():
    env, topo, net = fixture()
    link = topo.links["A<->B:fwd"]
    flow = net.transfer("A", "B", mbps(100) * 100)
    mod = LinkLoadModulator(env, net, link, mean_load=0.5,
                            rng=env.rng.stream("mod"), interval=2.0)
    mod.start()
    rates = []

    def sampler(env):
        while flow.active and env.now < 100:
            rates.append(flow.rate)
            yield env.timeout(2.0)

    env.process(sampler(env))
    env.run(until=100.0)
    assert min(rates) < mbps(70)
    assert max(rates) > min(rates)


def test_modulator_validation():
    env, topo, net = fixture()
    link = topo.links["A<->B:fwd"]
    rng = env.rng.stream("x")
    with pytest.raises(ValueError):
        LinkLoadModulator(env, net, link, mean_load=1.5, rng=rng)
    with pytest.raises(ValueError):
        LinkLoadModulator(env, net, link, mean_load=0.5, rng=rng,
                          correlation=1.0)
    with pytest.raises(ValueError):
        LinkLoadModulator(env, net, link, mean_load=0.5, rng=rng,
                          interval=0)
    with pytest.raises(ValueError):
        LinkLoadModulator(env, net, link, mean_load=0.5, rng=rng,
                          floor=0.9, ceiling=0.1)


def test_modulator_determinism():
    def run(seed):
        env, topo, net = fixture()
        env.rng.seed = seed
        link = topo.links["A<->B:fwd"]
        mod = LinkLoadModulator(env, net, link, mean_load=0.7,
                                rng=env.rng.stream("mod"), interval=1.0)
        mod.start()
        env.run(until=50.0)
        return link.capacity

    # Same construction (seed=4 inside fixture) → same trajectory.
    assert run(4) == run(4)
