"""Tests for the fluid max-min fair allocator."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import FlowError, FluidNetwork, RateRecorder, Topology, mbps
from repro.sim import Environment


def simple_net(capacity=mbps(100), latency=0.01):
    env = Environment(seed=1)
    topo = Topology()
    topo.duplex_link("A", "B", capacity=capacity, latency=latency)
    return env, topo, FluidNetwork(env, topo)


def test_single_flow_gets_full_capacity():
    env, topo, net = simple_net()
    flow = net.transfer("A", "B", mbps(100) * 10)  # 10 s of data
    env.run(until=flow.done)
    assert env.now == pytest.approx(10.0)
    assert flow.finished_at == pytest.approx(10.0)


def test_two_flows_share_fairly():
    env, topo, net = simple_net()
    f1 = net.transfer("A", "B", mbps(100) * 10)
    f2 = net.transfer("A", "B", mbps(100) * 10)
    env.run()
    assert f1.finished_at == pytest.approx(20.0)
    assert f2.finished_at == pytest.approx(20.0)


def test_short_flow_releases_bandwidth_to_long_flow():
    env, topo, net = simple_net()
    long = net.transfer("A", "B", mbps(100) * 10)
    short = net.transfer("A", "B", mbps(100) * 1)
    env.run()
    # short: 1 unit at half rate → 2 s. long: 2 s at half + 8 units full.
    assert short.finished_at == pytest.approx(2.0)
    assert long.finished_at == pytest.approx(11.0)


def test_per_flow_cap_respected():
    env, topo, net = simple_net()
    capped = net.transfer("A", "B", mbps(10) * 10, cap=mbps(10))
    env.run()
    assert capped.finished_at == pytest.approx(10.0)


def test_capped_flow_leaves_rest_to_others():
    env, topo, net = simple_net()
    capped = net.transfer("A", "B", mbps(10) * 100, cap=mbps(10))
    greedy = net.transfer("A", "B", mbps(90) * 10)
    env.run()
    assert greedy.finished_at == pytest.approx(10.0)  # gets the other 90
    assert capped.finished_at == pytest.approx(100.0)


def test_opposite_directions_do_not_contend():
    env, topo, net = simple_net()
    ab = net.transfer("A", "B", mbps(100) * 10)
    ba = net.transfer("B", "A", mbps(100) * 10)
    env.run()
    assert ab.finished_at == pytest.approx(10.0)
    assert ba.finished_at == pytest.approx(10.0)


def test_bottleneck_shared_across_multihop():
    env = Environment()
    topo = Topology()
    topo.add_link("A", "M", mbps(100), 0.001)
    topo.add_link("B", "M", mbps(100), 0.001)
    topo.add_link("M", "C", mbps(100), 0.001)  # shared bottleneck
    net = FluidNetwork(env, topo)
    f1 = net.transfer("A", "C", mbps(100) * 5)
    f2 = net.transfer("B", "C", mbps(100) * 5)
    env.run()
    assert f1.finished_at == pytest.approx(10.0)
    assert f2.finished_at == pytest.approx(10.0)


def test_max_min_not_proportional():
    """A flow capped below fair share frees capacity for the others."""
    env = Environment()
    topo = Topology()
    topo.add_link("A", "B", mbps(90), 0.001)
    net = FluidNetwork(env, topo)
    small = net.transfer("A", "B", mbps(10) * 30, cap=mbps(10))
    big1 = net.transfer("A", "B", mbps(40) * 10)
    big2 = net.transfer("A", "B", mbps(40) * 10)
    net.reallocate()
    assert small.rate == pytest.approx(mbps(10))
    assert big1.rate == pytest.approx(mbps(40))
    assert big2.rate == pytest.approx(mbps(40))
    env.run()


def test_zero_byte_transfer_completes_immediately():
    env, topo, net = simple_net()
    flow = net.transfer("A", "B", 0)
    assert flow.done.triggered
    env.run()
    assert flow.finished_at == 0.0


def test_negative_bytes_rejected():
    env, topo, net = simple_net()
    with pytest.raises(ValueError):
        net.transfer("A", "B", -1)


def test_abort_fails_done_event():
    env, topo, net = simple_net()
    flow = net.transfer("A", "B", mbps(100) * 100)

    def aborter(env, flow):
        yield env.timeout(5.0)
        flow.abort("operator cancel")

    env.process(aborter(env, flow))
    with pytest.raises(FlowError, match="operator cancel"):
        env.run(until=flow.done)


def test_aborted_flow_reports_partial_progress():
    env, topo, net = simple_net()
    flow = net.transfer("A", "B", mbps(100) * 100)

    def aborter(env, flow):
        yield env.timeout(5.0)
        flow.abort()

    env.process(aborter(env, flow))
    flow.done.defuse()
    env.run()
    assert flow.transferred == pytest.approx(mbps(100) * 5)


def test_link_down_stalls_flow_and_restore_resumes():
    env, topo, net = simple_net()
    flow = net.transfer("A", "B", mbps(100) * 10)
    link = topo.links["A<->B:fwd"]

    def outage(env):
        yield env.timeout(5.0)
        link.set_down()
        net.reallocate()
        yield env.timeout(7.0)
        link.restore()
        net.reallocate()

    env.process(outage(env))
    env.run()
    # 5 s transferred + 7 s outage + 5 s remaining = 17 s
    assert flow.finished_at == pytest.approx(17.0)


def test_cap_change_midflight():
    env, topo, net = simple_net()
    flow = net.transfer("A", "B", mbps(100) * 10, cap=mbps(50))

    def raiser(env, flow):
        yield env.timeout(10.0)  # half the data at 50
        flow.set_cap(mbps(100))

    env.process(raiser(env, flow))
    env.run()
    assert flow.finished_at == pytest.approx(15.0)


def test_progress_is_current():
    env, topo, net = simple_net()
    flow = net.transfer("A", "B", mbps(100) * 10)

    def checker(env, flow):
        yield env.timeout(4.0)
        assert flow.progress() == pytest.approx(mbps(100) * 4)

    env.process(checker(env, flow))
    env.run()


def test_recorder_integration_total_bytes_matches_size():
    env, topo, net = simple_net()
    rec = RateRecorder("f")
    size = mbps(100) * 7.5
    net.transfer("A", "B", size, recorder=rec)
    env.run()
    series = rec.close(env.now)
    assert series.total_bytes == pytest.approx(size, rel=1e-9)


def test_many_flows_conservation():
    env = Environment()
    topo = Topology()
    topo.add_link("A", "B", mbps(100), 0.001)
    net = FluidNetwork(env, topo)
    flows = [net.transfer("A", "B", mbps(1) * (i + 1)) for i in range(20)]
    net.reallocate()
    assert sum(f.rate for f in flows) == pytest.approx(mbps(100))
    env.run()
    assert all(f.finished_at is not None for f in flows)


@given(st.lists(st.floats(0.1, 50.0), min_size=1, max_size=12),
       st.floats(10.0, 1000.0))
@settings(max_examples=60, deadline=None)
def test_property_allocation_feasible_and_work_conserving(caps_mb, cap_total):
    """Rates never exceed caps or link capacity; link is saturated
    whenever some flow is not cap-limited."""
    env = Environment()
    topo = Topology()
    link = topo.add_link("A", "B", mbps(cap_total), 0.001)
    net = FluidNetwork(env, topo)
    flows = [net.transfer("A", "B", 1e12, cap=mbps(c)) for c in caps_mb]
    net.reallocate()
    total = sum(f.rate for f in flows)
    assert total <= link.capacity * (1 + 1e-9)
    for f in flows:
        assert f.rate <= f.cap * (1 + 1e-9)
    cap_limited = all(f.rate >= f.cap * (1 - 1e-6) for f in flows)
    if not cap_limited:
        assert total == pytest.approx(link.capacity, rel=1e-6)


@given(st.integers(1, 10))
@settings(max_examples=30, deadline=None)
def test_property_equal_flows_get_equal_rates(n):
    env = Environment()
    topo = Topology()
    topo.add_link("A", "B", mbps(100), 0.001)
    net = FluidNetwork(env, topo)
    flows = [net.transfer("A", "B", 1e12) for _ in range(n)]
    net.reallocate()
    rates = {round(f.rate, 3) for f in flows}
    assert len(rates) == 1
    assert flows[0].rate == pytest.approx(mbps(100) / n)


def test_snapshot_and_bottlenecks():
    env, topo, net = simple_net()
    f1 = net.transfer("A", "B", mbps(100) * 50)
    f2 = net.transfer("A", "B", mbps(100) * 50, cap=mbps(10))
    net.reallocate()
    snap = net.snapshot()
    assert snap["t"] == env.now
    assert len(snap["flows"]) == 2
    used, cap, n = snap["links"]["A<->B:fwd"]
    assert n == 2
    assert used == pytest.approx(mbps(100))
    assert cap == mbps(100)
    assert "A<->B:fwd" in net.bottlenecks()
    # The reverse direction carries nothing.
    assert "A<->B:rev" not in snap["links"]
    env.run()


def test_bottlenecks_empty_when_capped_flows_dominate():
    env, topo, net = simple_net()
    net.transfer("A", "B", 1e12, cap=mbps(10))
    net.reallocate()
    assert net.bottlenecks() == []
