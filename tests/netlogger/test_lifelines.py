"""Lifeline reconstruction — unit cases plus the seeded chaos run."""

import pytest

from repro.net import FaultSchedule
from repro.netlogger import (LogRecord, extract_fault_windows,
                             failure_breakdown, reconstruct_lifelines,
                             stage_breakdown, ttfb_values)
from repro.scenarios.esg import EsgTestbed


def rec(t, event, **fields):
    return LogRecord(t, "client", "rm", event,
                     {k: str(v) for k, v in fields.items()})


# ---------------------------------------------------------------------------
# Unit: hand-built event logs
# ---------------------------------------------------------------------------

def test_happy_path_stages_telescope():
    records = [
        rec(0.0, "rm.request", file="f1", ticket=1),
        rec(1.0, "rm.select", file="f1", ticket=1, host="anl"),
        rec(2.0, "gridftp.connect", file="f1", ticket=1, host="anl"),
        rec(3.0, "gridftp.first_byte", file="f1", host="anl"),
        rec(10.0, "rm.transfer.done", file="f1", ticket=1),
    ]
    life = reconstruct_lifelines(records)["f1"]
    assert life.outcome == "done"
    assert life.complete
    assert life.ticket == "1"
    assert life.requested_at == 0.0
    assert life.finished_at == 10.0
    assert life.ttfb == pytest.approx(1.0)
    totals = life.stage_totals()
    assert totals == {"select": 1.0, "connect": 1.0,
                      "first_byte": 1.0, "stream": 7.0}
    assert sum(totals.values()) == pytest.approx(life.duration)


def test_tape_staging_interleaves_first_byte():
    records = [
        rec(0.0, "rm.request", file="f2"),
        rec(1.0, "rm.select", file="f2"),
        rec(2.0, "gridftp.connect", file="f2"),
        rec(2.5, "hrm.stage.request", file="f2"),
        rec(60.0, "hrm.stage.done", file="f2"),
        rec(61.0, "gridftp.first_byte", file="f2"),
        rec(70.0, "rm.transfer.done", file="f2"),
    ]
    life = reconstruct_lifelines(records)["f2"]
    totals = life.stage_totals()
    assert totals["stage"] == pytest.approx(57.5)
    # first_byte accrues both before staging and after it finishes
    assert totals["first_byte"] == pytest.approx(0.5 + 1.0)
    assert sum(totals.values()) == pytest.approx(life.duration)
    assert life.complete


def test_retry_backoff_and_failure_attribution():
    records = [
        rec(0.0, "rm.request", file="f3"),
        rec(1.0, "rm.select", file="f3"),
        rec(2.0, "rm.retry", file="f3", attempt=1),
        rec(8.0, "rm.select", file="f3"),
        rec(20.0, "rm.failure", file="f3", cls="host_down",
            reason="connect failed (425)"),
    ]
    life = reconstruct_lifelines(records)["f3"]
    assert life.outcome == "failed"
    assert life.complete  # failures are terminal, hence complete
    assert life.failure_class == "host_down"
    assert life.error == "connect failed (425)"
    totals = life.stage_totals()
    assert totals["backoff"] == pytest.approx(6.0)
    assert sum(totals.values()) == pytest.approx(life.duration)
    assert failure_breakdown([life]) == {"host_down": 1}


def test_unterminated_lifeline_is_incomplete():
    records = [
        rec(0.0, "rm.request", file="f4"),
        rec(1.0, "rm.select", file="f4"),
    ]
    life = reconstruct_lifelines(records)["f4"]
    assert life.outcome is None
    assert not life.complete
    assert life.duration is None
    # the open tail stage closes at zero length
    assert life.stages[-1].duration == 0.0


def test_records_without_file_field_are_ignored():
    records = [rec(0.0, "nws.forecast", src="a", dst="b"),
               rec(1.0, "rm.request", file="f5")]
    assert list(reconstruct_lifelines(records)) == ["f5"]


def test_fault_window_extraction_pairs_and_unmatched():
    records = [
        rec(5.0, "fault.begin", kind="degrade", target="wan",
            description="storm"),
        rec(9.0, "fault.end", kind="degrade", target="wan"),
        rec(12.0, "fault.begin", kind="server", target="anl"),
    ]
    windows = extract_fault_windows(records)
    assert len(windows) == 2
    assert (windows[0].kind, windows[0].start, windows[0].end) == \
        ("degrade", 5.0, 9.0)
    assert windows[0].description == "storm"
    assert windows[1].end == float("inf")
    assert windows[0].overlaps(0.0, 6.0)
    assert not windows[0].overlaps(9.0, 20.0)


def test_faults_attach_only_to_overlapping_lifelines():
    records = [
        rec(0.0, "rm.request", file="early"),
        rec(10.0, "rm.transfer.done", file="early"),
        rec(15.0, "rm.request", file="late"),
        rec(25.0, "rm.transfer.done", file="late"),
        rec(5.0, "fault.begin", kind="degrade", target="wan"),
        rec(9.0, "fault.end", kind="degrade", target="wan"),
        rec(20.0, "fault.begin", kind="server", target="anl"),
        rec(23.0, "fault.end", kind="server", target="anl"),
    ]
    lifelines = reconstruct_lifelines(records)
    assert [w.kind for w in lifelines["early"].faults] == ["degrade"]
    assert [w.kind for w in lifelines["late"].faults] == ["server"]


def test_stage_breakdown_aggregates():
    records = [
        rec(0.0, "rm.request", file="a"),
        rec(2.0, "rm.select", file="a"),
        rec(3.0, "gridftp.connect", file="a"),
        rec(4.0, "gridftp.first_byte", file="a"),
        rec(5.0, "rm.transfer.done", file="a"),
        rec(0.0, "rm.request", file="b"),
        rec(4.0, "rm.select", file="b"),
        rec(5.0, "gridftp.connect", file="b"),
        rec(6.0, "gridftp.first_byte", file="b"),
        rec(9.0, "rm.transfer.done", file="b"),
    ]
    lives = list(reconstruct_lifelines(records).values())
    stats = stage_breakdown(lives)
    assert stats["select"].count == 2
    assert stats["select"].mean == pytest.approx(3.0)
    assert stats["select"].max == pytest.approx(4.0)
    assert ttfb_values(lives) == [pytest.approx(1.0), pytest.approx(1.0)]


# ---------------------------------------------------------------------------
# Integration: seeded chaos schedule over the full testbed
# ---------------------------------------------------------------------------

def test_chaos_schedule_attributes_each_fault_to_one_lifeline():
    """Sequential transfers with one injected fault each: every fault
    window must land in exactly one file's lifeline."""
    tb = EsgTestbed(seed=11, file_size_override=50 * 2**20)
    tb.warm_nws(90.0)
    injector = tb.fault_injector()
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:3]
    for i, name in enumerate(names):
        injector.install(FaultSchedule().degrade(
            "wan-client:rev", start=1.0, duration=2.0, fraction=0.5,
            description=f"chaos-{i}"))
        ticket = tb.request_manager.submit([(ds, name)])
        tb.env.run(until=ticket.done)
        tb.env.run(until=tb.env.now + 5.0)  # gap between lifelines

    lifelines = reconstruct_lifelines(tb.logger.records)
    assert set(names) <= set(lifelines)
    windows = extract_fault_windows(tb.logger.records)
    chaos = [w for w in windows if w.description.startswith("chaos-")]
    assert len(chaos) == len(names)
    for window in chaos:
        owners = [life.file for life in lifelines.values()
                  if window in life.faults]
        assert len(owners) == 1, (window, owners)
    # every transfer still completed, stages telescoping as usual
    for name in names:
        life = lifelines[name]
        assert life.outcome == "done"
        assert life.complete
        assert sum(life.stage_totals().values()) == \
            pytest.approx(life.duration)


def test_reconstruction_report_unit_partitions_and_reasons():
    from repro.netlogger import reconstruction_report
    records = [
        rec(0.0, "rm.request", file="done"),
        rec(1.0, "rm.select", file="done"),
        rec(2.0, "gridftp.connect", file="done"),
        rec(3.0, "gridftp.first_byte", file="done"),
        rec(4.0, "rm.transfer.done", file="done"),
        rec(5.0, "rm.request", file="open"),
        rec(6.0, "rm.transfer.done", file="headless"),
    ]
    report = reconstruction_report(reconstruct_lifelines(records),
                                   dropped=7)
    assert report.total == 3
    assert report.complete == 1
    assert report.complete_fraction == pytest.approx(1 / 3)
    assert report.reasons() == {"no-request-event": 1,
                                "no-terminal-event": 1}
    text = report.render()
    assert "3 total, 1 complete (33%)" in text
    assert "7 log records dropped" in text
    assert "no-request-event: 1" in text


def test_ring_buffer_eviction_surfaces_as_incomplete_lifelines():
    """A tiny ULM ring buffer evicts early milestones; the
    reconstruction report must account for every lost lifeline and
    surface the eviction count instead of silently shrinking."""
    from repro.netlogger import reconstruction_report
    tb = EsgTestbed(seed=7, file_size_override=20 * 2**20,
                    log_capacity=60)
    tb.warm_nws(90.0)
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:6]
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=ticket.done)

    assert tb.logger.dropped > 0, "capacity too large to evict anything"
    lifelines = reconstruct_lifelines(tb.logger.records)
    report = reconstruction_report(lifelines, dropped=tb.logger.dropped)
    assert report.dropped == tb.logger.dropped
    assert report.total == len(lifelines)
    # eviction cost at least one early file its request milestone
    assert report.incomplete_count > 0
    assert "no-request-event" in report.reasons()
    assert report.complete + report.incomplete_count == report.total
    assert report.complete_fraction < 1.0
