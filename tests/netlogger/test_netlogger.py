"""Tests for NetLogger events and bandwidth analysis."""

import numpy as np
import pytest

from repro.net import RateSeries, gbps, mbps
from repro.netlogger import (
    BandwidthSummary,
    NetLogger,
    bandwidth_timeline,
    summarize,
)
from repro.sim import Environment


def test_event_recording_and_filtering():
    env = Environment()
    log = NetLogger(env, host="anl-ws", prog="gridftp")

    def worker(env, log):
        log.event("transfer.start", file="a.nc")
        yield env.timeout(5)
        log.event("transfer.end", file="a.nc", bytes=100)
        log.event("transfer.start", host="other", file="b.nc")

    env.process(worker(env, log))
    env.run()
    assert len(log) == 3
    assert len(log.select(event="transfer.start")) == 2
    assert len(log.select(host="anl-ws")) == 2
    ends = log.select(event="transfer.end")
    assert ends[0].t == 5.0
    assert ends[0].fields["bytes"] == "100"


def test_ulm_format():
    env = Environment()
    log = NetLogger(env, host="h", prog="p")
    log.event("x.y", value=7)
    line = log.dump_ulm()
    assert "HOST=h" in line
    assert "PROG=p" in line
    assert "NL.EVNT=x.y" in line
    assert "VALUE=7" in line
    assert line.startswith("DATE=")


def test_ulm_dump_is_line_per_record():
    env = Environment()
    log = NetLogger(env)
    for i in range(4):
        log.event("e", i=i)
    assert len(log.dump_ulm().splitlines()) == 4


def flat_series(rate, t0, t1):
    return RateSeries([t0], [rate], t1)


def test_summarize_flat_series():
    s = summarize([flat_series(mbps(100), 0, 100)])
    assert s.sustained == pytest.approx(mbps(100))
    assert s.peak_100ms == pytest.approx(mbps(100))
    assert s.peak_5s == pytest.approx(mbps(100))
    assert s.total_bytes == pytest.approx(mbps(100) * 100)
    assert s.duration == 100


def test_summarize_peaks_exceed_sustained_on_bursty_series():
    burst = RateSeries([0.0, 10.0, 10.05, 50.0],
                       [mbps(100), gbps(1.5), mbps(100), 0.0], 100.0)
    s = summarize([burst])
    assert s.peak_100ms > s.peak_5s > s.sustained


def test_summarize_sustained_window_picks_best_window():
    # 200 Mb/s for the first 50 s, dead afterwards.
    series = RateSeries([0.0, 50.0], [mbps(200), 0.0], 200.0)
    s = summarize([series], sustained_window=50.0)
    assert s.sustained == pytest.approx(mbps(200))
    full = summarize([series])
    assert full.sustained == pytest.approx(mbps(50))


def test_summarize_window_bounds():
    series = flat_series(mbps(10), 0, 60)
    s = summarize([series], t0=0.0, t1=30.0)
    assert s.total_bytes == pytest.approx(mbps(10) * 30)
    with pytest.raises(ValueError):
        summarize([series], t0=10.0, t1=10.0)


def test_unit_conversions_in_summary():
    s = BandwidthSummary(peak_100ms=gbps(1.55), peak_5s=gbps(1.03),
                         sustained=mbps(512.9), sustained_window=3600,
                         total_bytes=230.8e9, duration=3600)
    assert s.peak_100ms_gbps == pytest.approx(1.55)
    assert s.sustained_mbps == pytest.approx(512.9)
    assert s.total_gbytes == pytest.approx(230.8)
    rows = dict(s.rows())
    assert rows["Peak transfer rate over 0.1 seconds"] == "1.55 Gbits/sec"
    assert rows["Sustained transfer rate over 1 hour"] == "512.9 Mbits/sec"
    assert rows["Total data transferred"] == "230.8 Gbytes"


def test_bandwidth_timeline_bins():
    a = flat_series(mbps(10), 0, 120)
    b = flat_series(mbps(10), 60, 120)
    times, rates = bandwidth_timeline([a, b], bin_seconds=60.0)
    assert list(times) == [0.0, 60.0]
    assert rates[0] == pytest.approx(mbps(10))
    assert rates[1] == pytest.approx(mbps(20))
