"""Tests for ULM round-tripping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netlogger import NetLogger, parse_ulm, parse_ulm_log
from repro.sim import Environment


def test_roundtrip_single_record():
    env = Environment()
    log = NetLogger(env, host="anl-ws", prog="gridftp")

    def emit(env):
        yield env.timeout(12.5)
        log.event("transfer.end", file="a.nc", bytes=100)

    env.process(emit(env))
    env.run()
    line = log.records[0].to_ulm()
    back = parse_ulm(line)
    assert back.t == 12.5
    assert back.host == "anl-ws"
    assert back.prog == "gridftp"
    assert back.event == "transfer.end"
    assert back.fields == {"file": "a.nc", "bytes": "100"}


def test_roundtrip_whole_log():
    env = Environment()
    log = NetLogger(env)
    for i in range(5):
        log.event(f"e{i}", seq=i)
    parsed = parse_ulm_log(log.dump_ulm())
    assert len(parsed) == 5
    assert [r.event for r in parsed] == [f"e{i}" for i in range(5)]


def test_parse_errors():
    with pytest.raises(ValueError, match="malformed"):
        parse_ulm("DATE=1 HOST=h PROG=p NL.EVNT=e junk")
    with pytest.raises(ValueError, match="missing"):
        parse_ulm("HOST=h PROG=p NL.EVNT=e")
    assert parse_ulm_log("\n\n") == []


def test_quoted_values_roundtrip():
    """Free-text values (failure reasons, fault descriptions) survive."""
    env = Environment()
    log = NetLogger(env, host="client ws", prog="rm")
    log.event("rm.failure", reason="connect failed (425)",
              path='disk "scratch" \\tmp', empty="")
    line = log.records[0].to_ulm()
    back = parse_ulm(line)
    assert back.host == "client ws"
    assert back.fields["reason"] == "connect failed (425)"
    assert back.fields["path"] == 'disk "scratch" \\tmp'
    assert back.fields["empty"] == ""


def test_unterminated_quote_is_rejected():
    with pytest.raises(ValueError, match="unterminated"):
        parse_ulm('DATE=1 HOST=h PROG=p NL.EVNT=e REASON="oops')


@given(st.dictionaries(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    st.text(alphabet='xyz0123. "\\', max_size=12),
    max_size=5))
@settings(max_examples=60, deadline=None)
def test_property_fields_roundtrip(fields):
    env = Environment()
    log = NetLogger(env, host="h", prog="p")
    log.event("ev", **fields)
    back = parse_ulm(log.records[0].to_ulm())
    assert back.fields == {k.lower(): str(v) for k, v in fields.items()}
