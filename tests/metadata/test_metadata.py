"""Tests for the CDMS-style metadata catalog."""

import pytest

from repro.data import ClimateModelRun, GridSpec, monthly_files
from repro.metadata import MetadataCatalog, MetadataError, VariableRecord
from repro.sim import Environment

VARS = (VariableRecord("tas", "K", "surface air temperature"),
        VariableRecord("pr", "mm/day", "precipitation"))


def catalog(years=2, files_per_year=12):
    env = Environment()
    mc = MetadataCatalog(env)
    run = ClimateModelRun(model="NCAR_CSM", run="run1",
                          grid=GridSpec(8, 16, 12), start_year=1995)
    mc.register_dataset(run.dataset_id, run.model, run.run,
                        description="test dataset", variables=VARS)
    files = monthly_files(run, years, variables=("tas", "pr"),
                          files_per_year=files_per_year)
    mc.register_files(run.dataset_id, files)
    return env, mc, run.dataset_id, files


def test_register_and_list_datasets():
    env, mc, ds_id, files = catalog()
    records = mc.datasets()
    assert len(records) == 1
    rec = records[0]
    assert rec.dataset_id == ds_id
    assert rec.model == "NCAR_CSM"
    assert rec.variables == ("pr", "tas")
    assert rec.file_count == 24


def test_datasets_filtered_by_model():
    env, mc, ds_id, files = catalog()
    mc.register_dataset("pcmdi.other.run9", "GFDL", "run9")
    assert len(mc.datasets()) == 2
    assert len(mc.datasets(model="NCAR_CSM")) == 1
    assert len(mc.datasets(model="GFDL")) == 1


def test_duplicate_dataset_rejected():
    env, mc, ds_id, files = catalog()
    with pytest.raises(MetadataError):
        mc.register_dataset(ds_id, "NCAR_CSM", "run1")


def test_variables_listing():
    env, mc, ds_id, files = catalog()
    vars_ = {v.name: v for v in mc.variables(ds_id)}
    assert vars_["tas"].units == "K"
    assert vars_["pr"].long_name == "precipitation"


def test_time_extent():
    env, mc, ds_id, files = catalog(years=3)
    assert mc.time_extent(ds_id) == (1995, 1997)


def test_time_extent_empty_dataset():
    env = Environment()
    mc = MetadataCatalog(env)
    mc.register_dataset("empty.ds", "X", "r")
    with pytest.raises(MetadataError):
        mc.time_extent("empty.ds")


def test_resolve_all_files_for_variable():
    env, mc, ds_id, files = catalog(years=1)
    names = mc.resolve(ds_id, "tas")
    assert len(names) == 12
    assert names == sorted(names)


def test_resolve_year_range():
    env, mc, ds_id, files = catalog(years=3)
    names = mc.resolve(ds_id, "tas", years=(1996, 1996))
    assert len(names) == 12
    assert all(".1996." in n for n in names)


def test_resolve_month_range():
    env, mc, ds_id, files = catalog(years=1)
    names = mc.resolve(ds_id, "pr", months=(1, 3))
    assert len(names) == 3
    assert names[0].endswith("m01-m01.nc")


def test_resolve_month_range_with_grouped_files():
    """Quarterly files overlapping the requested months are included."""
    env, mc, ds_id, files = catalog(years=1, files_per_year=4)
    names = mc.resolve(ds_id, "tas", months=(2, 4))
    # m01-m03 overlaps (2,4); m04-m06 overlaps too.
    assert len(names) == 2


def test_resolve_unknown_variable_rejected():
    env, mc, ds_id, files = catalog()
    with pytest.raises(MetadataError, match="no variable"):
        mc.resolve(ds_id, "slp")


def test_resolve_unknown_dataset():
    env, mc, ds_id, files = catalog()
    with pytest.raises(MetadataError):
        mc.resolve("nope", "tas")


def test_file_size_lookup():
    env, mc, ds_id, files = catalog()
    size = mc.file_size(ds_id, str(files[0]["logical_name"]))
    assert size == files[0]["size"]
    with pytest.raises(MetadataError):
        mc.file_size(ds_id, "ghost.nc")


def test_timed_query_costs_time():
    env, mc, ds_id, files = catalog()

    def main():
        names = yield from mc.query_files(ds_id, "tas", months=(1, 1))
        return env.now, names

    p = env.process(main())
    env.run()
    t, names = p.value
    assert t > 0
    assert len(names) == 2  # one per year (2 years)
