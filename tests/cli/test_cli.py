"""Tests for the ``repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_grammar():
    parser = build_parser()
    args = parser.parse_args(["--seed", "3", "table1",
                              "--minutes", "5"])
    assert args.seed == 3
    assert args.command == "table1"
    assert args.minutes == 5.0
    args = parser.parse_args(["portal", "pr"])
    assert args.variable == "pr"
    args = parser.parse_args(["trace", "--spans"])
    assert args.command == "trace" and args.spans
    args = parser.parse_args(["metrics", "--json"])
    assert args.command == "metrics" and args.json
    with pytest.raises(SystemExit):
        parser.parse_args([])  # command required
    with pytest.raises(SystemExit):
        parser.parse_args(["portal", "nonsense"])


def test_browse_command(capsys):
    assert main(["browse"]) == 0
    out = capsys.readouterr().out
    assert "pcmdi.ncar_csm.run1" in out
    assert "tas" in out


def test_table1_command_short(capsys):
    assert main(["--seed", "3", "table1", "--minutes", "1"]) == 0
    out = capsys.readouterr().out
    assert "Peak transfer rate over 0.1 seconds" in out
    assert "Striped servers at source location" in out


def test_figure8_command_short(capsys):
    assert main(["--seed", "5", "figure8", "--hours", "0.3"]) == 0
    out = capsys.readouterr().out
    assert "Mb/s" in out
    assert "plateau" in out


def test_demo_command(capsys):
    assert main(["--seed", "4", "demo"]) == 0
    out = capsys.readouterr().out
    assert "scale:" in out          # a rendered field
    assert "simulated seconds" in out


def test_portal_command(capsys):
    assert main(["--seed", "4", "portal", "tas"]) == 0
    out = capsys.readouterr().out
    assert "server-side January mean" in out
    assert "less than a full download" in out


def test_trace_command(capsys):
    assert main(["--seed", "4", "trace", "--spans"]) == 0
    out = capsys.readouterr().out
    assert "=== lifelines" in out
    assert "=== per-stage latency ===" in out
    assert "select=" in out and "stream=" in out
    assert "TTFB:" in out
    assert "[INCOMPLETE]" not in out
    assert "trace ticket-" in out       # --spans tree
    assert "rm.file" in out


def test_metrics_command(capsys):
    assert main(["--seed", "4", "metrics"]) == 0
    out = capsys.readouterr().out
    assert "# TYPE rm_transfers_total counter" in out
    assert "rm_transfer_seconds_bucket" in out


def test_metrics_command_json(capsys):
    import json
    assert main(["--seed", "4", "metrics", "--json"]) == 0
    blob = json.loads(capsys.readouterr().out)
    assert blob["metrics"]["rm.transfers_total"]["type"] == "counter"
    samples = blob["metrics"]["rm.transfers_total"]["samples"]
    assert sum(s["value"] for s in samples) > 0


def test_parser_grammar_slo_and_report():
    parser = build_parser()
    args = parser.parse_args(["slo", "--ttfb", "1.5"])
    assert args.command == "slo" and args.ttfb == 1.5
    args = parser.parse_args(["report", "--files", "4",
                              "--inject-discrepancy"])
    assert args.command == "report"
    assert args.files == 4 and args.inject_discrepancy


def test_trace_command_reports_reconstruction(capsys):
    assert main(["--seed", "4", "trace"]) == 0
    out = capsys.readouterr().out
    assert "lifelines:" in out
    assert "log records dropped" in out


def test_metrics_command_shows_netlogger_drops(capsys):
    assert main(["--seed", "4", "metrics"]) == 0
    out = capsys.readouterr().out
    assert "# netlogger_events_emitted" in out
    assert "# netlogger_events_dropped" in out


def test_metrics_json_includes_netlogger_section(capsys):
    import json
    assert main(["--seed", "4", "metrics", "--json"]) == 0
    blob = json.loads(capsys.readouterr().out)
    assert blob["netlogger"]["emitted"] > 0
    assert blob["netlogger"]["dropped"] >= 0


def test_slo_command(capsys):
    assert main(["--seed", "4", "slo"]) == 0
    out = capsys.readouterr().out
    assert "=== SLO summary" in out
    assert "client-ttfb" in out
    assert "client-goodput" in out
    # staging off tape blows a 2 s TTFB bound: the engine must page
    assert "BREACHING" in out or "breach:" in out


def test_report_command_clean_certificate(capsys):
    assert main(["--seed", "4", "report", "--files", "4"]) == 0
    out = capsys.readouterr().out
    assert "reconciliation report" in out
    assert "verdict: CLEAN (0 discrepancies)" in out


def test_report_command_detects_injected_corruption(capsys):
    assert main(["--seed", "4", "report", "--files", "4",
                 "--inject-discrepancy"]) == 1
    out = capsys.readouterr().out
    assert "destination-digest-mismatch" in out
    assert "DISCREPANT" in out
