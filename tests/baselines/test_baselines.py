"""Tests for the DODS / SRB / gateway comparators."""

import pytest

from repro.baselines import (
    DodsClient,
    DodsError,
    DodsServer,
    GatewayClient,
    SrbBroker,
    SrbError,
    StorageAdapter,
)
from repro.data import ClimateModelRun, GridSpec
from repro.hosts import Host
from repro.net import FluidNetwork, NameService, Topology, Transport, mbps
from repro.sim import Environment
from repro.storage import FileSystem

MB = 2 ** 20


class World:
    """Two sites plus a broker host."""

    def __init__(self, seed=1, wan=mbps(155), latency=0.015):
        self.env = Environment(seed=seed)
        self.topo = Topology()
        self.server_host = Host(self.topo, "srv", site="lbnl")
        self.client_host = Host(self.topo, "cli", site="anl")
        self.broker_host = Host(self.topo, "broker", site="sdsc")
        for h, r in ((self.server_host, "r1"), (self.client_host, "r2"),
                     (self.broker_host, "r3")):
            h.uplink(r)
        for r in ("r1", "r2", "r3"):
            self.topo.duplex_link(r, "core", wan, latency, name=f"wan-{r}")
        self.net = FluidNetwork(self.env, self.topo)
        self.ns = NameService(self.env)
        self.ns.register("srv.lbl.gov", "srv")
        self.transport = Transport(self.env, self.net, self.ns)
        self.server_fs = FileSystem(self.env, "srv-fs")
        self.client_fs = FileSystem(self.env, "cli-fs")

    def run(self, gen):
        p = self.env.process(gen)
        self.env.run(until=p)
        return p.value


def materialized_file(world, name="clim.nc"):
    run = ClimateModelRun(grid=GridSpec(8, 16, 12))
    blob = run.encode_year(1995, variables=("tas",))
    world.server_fs.create(name, len(blob), content=blob)
    return name, blob


# -- DODS ---------------------------------------------------------------------

def dods_world():
    w = World()
    server = DodsServer(w.env, w.server_host, w.server_fs, "srv.lbl.gov")
    client = DodsClient(w.env, w.transport, {"srv.lbl.gov": server})
    return w, server, client


def test_dods_whole_file_get():
    w, server, client = dods_world()
    w.server_fs.create("data.nc", 10 * MB)

    def main():
        return (yield from client.open_url(
            w.client_host, "srv.lbl.gov", "data.nc", w.client_fs))

    nbytes, secs, _ = w.run(main())
    assert nbytes == 10 * MB
    assert secs > 0
    assert w.client_fs.exists("data.nc")
    assert server.requests_served == 1


def test_dods_subsetting_reduces_transfer():
    w, server, client = dods_world()
    name, blob = materialized_file(w)

    def main():
        full = yield from client.open_url(
            w.client_host, "srv.lbl.gov", name, w.client_fs)
        sub = yield from client.open_url(
            w.client_host, "srv.lbl.gov", name, w.client_fs,
            variable="tas", lat=(-30.0, 30.0))
        return full[0], sub[0]

    full_bytes, sub_bytes = w.run(main())
    assert sub_bytes < full_bytes / 2


def test_dods_open_dataset_decodes():
    w, server, client = dods_world()
    name, _ = materialized_file(w)

    def main():
        ds = yield from client.open_dataset(
            w.client_host, "srv.lbl.gov", name, "tas", time=(0.0, 0.2))
        return ds

    ds = w.run(main())
    assert "tas" in ds
    assert ds["tas"].shape[0] <= 4


def test_dods_errors():
    w, server, client = dods_world()
    w.server_fs.create("sizeonly.nc", MB)

    def main():
        with pytest.raises(DodsError, match="unknown host"):
            yield from client.open_url(w.client_host, "ghost", "x",
                                       w.client_fs)
        with pytest.raises(DodsError, match="404"):
            yield from client.open_url(w.client_host, "srv.lbl.gov",
                                       "missing.nc", w.client_fs)
        with pytest.raises(DodsError, match="422"):
            yield from client.open_url(w.client_host, "srv.lbl.gov",
                                       "sizeonly.nc", w.client_fs,
                                       variable="tas")

    w.run(main())


def test_dods_no_restart_on_outage():
    """HTTP transfers die on a long outage instead of restarting."""
    w, server, client = dods_world()
    w.server_fs.create("big.nc", 200 * MB)
    link = w.topo.links["wan-r1:fwd"]

    def outage(env):
        yield env.timeout(3.0)
        link.set_down()
        w.net.reallocate()

    w.env.process(outage(w.env))

    def main():
        with pytest.raises(DodsError, match="connection reset"):
            yield from client.open_url(w.client_host, "srv.lbl.gov",
                                       "big.nc", w.client_fs)
        return w.env.now

    w.run(main())


# -- SRB ------------------------------------------------------------------------

def srb_world():
    w = World()
    broker = SrbBroker(w.env, w.transport, w.broker_host,
                       auto_replicate_after=2)
    return w, broker


def test_srb_mediated_read():
    w, broker = srb_world()
    w.server_fs.create("obj1", 5 * MB)
    broker.register("obj1", w.server_host, w.server_fs,
                    attributes={"model": "NCAR_CSM"})

    def main():
        return (yield from broker.sget(w.client_host, w.client_fs,
                                       "obj1"))

    nbytes, secs = w.run(main())
    assert nbytes == 5 * MB
    assert w.client_fs.exists("obj1")


def test_srb_register_requires_presence():
    w, broker = srb_world()
    with pytest.raises(SrbError):
        broker.register("ghost", w.server_host, w.server_fs)


def test_srb_unknown_object():
    w, broker = srb_world()

    def main():
        with pytest.raises(SrbError, match="no such object"):
            yield from broker.sget(w.client_host, w.client_fs, "nope")

    w.run(main())


def test_srb_mcat_attribute_query():
    w, broker = srb_world()
    w.server_fs.create("a", MB)
    w.server_fs.create("b", MB)
    broker.register("a", w.server_host, w.server_fs,
                    attributes={"model": "PCM"})
    broker.register("b", w.server_host, w.server_fs,
                    attributes={"model": "NCAR_CSM"})

    def main():
        return (yield from broker.query_mcat(model="PCM"))

    assert w.run(main()) == ["a"]


def test_srb_automatic_replication():
    """The broker, not the user, replicates after repeated reads."""
    w, broker = srb_world()
    w.server_fs.create("hot", 2 * MB)
    broker.register("hot", w.server_host, w.server_fs)
    client_resource = FileSystem(w.env, "anl-resource")

    def main():
        for _ in range(2):
            yield from broker.sget(w.client_host, w.client_fs, "hot",
                                   client_resource=client_resource)

    w.run(main())
    assert broker.replications == 1
    assert client_resource.exists("hot")
    assert broker.replica_count("hot") == 2


def test_srb_two_hop_slower_than_direct():
    """Broker mediation costs an extra WAN traversal."""
    w, broker = srb_world()
    w.server_fs.create("obj", 50 * MB)
    broker.register("obj", w.server_host, w.server_fs)

    def via_broker():
        return (yield from broker.sget(w.client_host, w.client_fs, "obj"))

    _, broker_secs = w.run(via_broker())
    # Direct single-stream path for comparison.
    from repro.net import TcpParams

    def direct():
        conn = yield from w.transport.connect("srv", "cli",
                                              TcpParams(
                                                  buffer_bytes=4 * MB))
        t0 = w.env.now
        yield from conn.send(50 * MB)
        return w.env.now - t0

    direct_secs = w.run(direct())
    assert broker_secs > 1.5 * direct_secs


# -- gateway -----------------------------------------------------------------------

def test_gateway_block_translation_overhead():
    w = World()
    gw = GatewayClient(w.env, w.transport)
    gw.register_adapter("srv.lbl.gov",
                        StorageAdapter("hpss", block_bytes=4 * MB,
                                       translate_cost=0.05))
    w.server_fs.create("f.dat", 40 * MB)

    def main():
        return (yield from gw.get(w.client_host, w.server_host,
                                  "srv.lbl.gov", w.server_fs, "f.dat",
                                  w.client_fs))

    nbytes, secs = w.run(main())
    assert nbytes == 40 * MB
    assert gw.blocks_translated == 10
    assert w.client_fs.exists("f.dat")
    # At least 10 × (translate + rtt) of pure overhead.
    assert secs > 10 * 0.05


def test_gateway_requires_adapter():
    w = World()
    gw = GatewayClient(w.env, w.transport)

    def main():
        with pytest.raises(KeyError):
            yield from gw.get(w.client_host, w.server_host, "srv.lbl.gov",
                              w.server_fs, "f", w.client_fs)
        yield w.env.timeout(0)

    w.run(main())


def test_adapter_validation():
    with pytest.raises(ValueError):
        StorageAdapter("x", block_bytes=0)
    with pytest.raises(ValueError):
        StorageAdapter("x", translate_cost=-1)
