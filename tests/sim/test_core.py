"""Tests for the simulation environment and event queue."""

import pytest

from repro.sim import Environment, Event, SimulationError, Timeout


def test_clock_starts_at_initial_time():
    assert Environment().now == 0.0
    assert Environment(initial_time=7.5).now == 7.5


def test_timeout_advances_clock():
    env = Environment()
    t = env.timeout(3.0, value="x")
    result = env.run(until=t)
    assert result == "x"
    assert env.now == 3.0


def test_run_until_number_advances_clock_even_with_no_events():
    env = Environment()
    env.run(until=10.0)
    assert env.now == 10.0


def test_run_until_number_does_not_process_later_events():
    env = Environment()
    fired = []
    env.timeout(5.0).add_callback(lambda ev: fired.append(env.now))
    env.timeout(15.0).add_callback(lambda ev: fired.append(env.now))
    env.run(until=10.0)
    assert fired == [5.0]
    assert env.now == 10.0
    env.run(until=20.0)
    assert fired == [5.0, 15.0]


def test_run_until_past_time_raises():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_run_drains_queue_when_until_none():
    env = Environment()
    env.timeout(1.0)
    env.timeout(2.0)
    env.run()
    assert env.now == 2.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_same_time_events_fire_in_schedule_order():
    env = Environment()
    order = []
    for i in range(5):
        env.timeout(1.0, value=i).add_callback(
            lambda ev: order.append(ev.value))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_event_succeed_value():
    env = Environment()
    ev = env.event()
    assert not ev.triggered
    ev.succeed(42)
    assert ev.triggered and not ev.processed
    env.run()
    assert ev.processed
    assert ev.value == 42


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)
    with pytest.raises(RuntimeError):
        ev.fail(ValueError())


def test_event_fail_needs_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_unhandled_failed_event_raises_at_processing():
    env = Environment()
    env.event().fail(ValueError("boom"))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_defused_failed_event_is_silent():
    env = Environment()
    ev = env.event()
    ev.fail(ValueError("boom"))
    ev.defuse()
    env.run()
    assert ev.exception is not None


def test_value_of_untriggered_event_raises():
    env = Environment()
    with pytest.raises(RuntimeError):
        _ = env.event().value


def test_callback_on_processed_event_still_runs():
    env = Environment()
    ev = env.timeout(1.0, value="late")
    env.run()
    seen = []
    ev.add_callback(lambda e: seen.append(e.value))
    env.run()
    assert seen == ["late"]


def test_run_until_event_returns_its_value_and_stops_clock():
    env = Environment()
    target = env.timeout(4.0, value="hit")
    env.timeout(100.0)
    assert env.run(until=target) == "hit"
    assert env.now == 4.0


def test_run_until_never_fired_event_raises():
    env = Environment()
    pending = env.event()
    env.timeout(1.0)
    with pytest.raises(SimulationError):
        env.run(until=pending)


def test_run_until_failed_event_raises_its_exception():
    env = Environment()
    ev = env.event()

    def failer(env, ev):
        yield env.timeout(1.0)
        ev.fail(RuntimeError("transfer died"))

    env.process(failer(env, ev))
    with pytest.raises(RuntimeError, match="transfer died"):
        env.run(until=ev)


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(9.0)
    env.timeout(3.0)
    assert env.peek() == 3.0


def test_step_with_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_trigger_chains_outcomes():
    env = Environment()
    src = env.event()
    dst = env.event()
    src.succeed("payload")
    dst.trigger(src)
    env.run()
    assert dst.value == "payload"


def test_rng_streams_attached_to_environment():
    a = Environment(seed=1).rng.stream("x").random()
    b = Environment(seed=1).rng.stream("x").random()
    c = Environment(seed=2).rng.stream("x").random()
    assert a == b
    assert a != c


def test_event_priority_ordering_at_same_time():
    from repro.sim import EventPriority
    env = Environment()
    order = []
    urgent = env.event()
    urgent._triggered = True
    env.schedule(urgent, delay=1.0, priority=EventPriority.LOW)
    urgent.add_callback(lambda ev: order.append("low"))
    normal = env.timeout(1.0)
    normal.add_callback(lambda ev: order.append("normal"))
    env.run()
    assert order == ["normal", "low"]


def test_schedule_callback_runs_at_current_time():
    env = Environment()
    seen = []

    def main(env):
        ev = env.timeout(3.0, value="x")
        yield ev
        env.schedule_callback(lambda e: seen.append((env.now, e.value)),
                              ev)
        yield env.timeout(0)

    env.process(main(env))
    env.run()
    assert seen == [(3.0, "x")]


def test_condition_value_maps_processed_children():
    from repro.sim import AllOf
    env = Environment()

    def main(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(2.0, value="b")
        results = yield AllOf(env, [t1, t2])
        return {ev.value for ev in results}

    p = env.process(main(env))
    env.run()
    assert p.value == {"a", "b"}


def test_condition_rejects_mixed_environments():
    from repro.sim import AllOf
    env_a, env_b = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env_a, [env_a.timeout(1), env_b.timeout(1)])
