"""Tests for Resource / PriorityResource / Store / Container."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


def test_resource_grants_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    log = []

    def user(env, res, name, hold):
        req = res.request()
        yield req
        log.append((env.now, name, "got"))
        yield env.timeout(hold)
        res.release(req)

    env.process(user(env, res, "a", 5))
    env.process(user(env, res, "b", 5))
    env.process(user(env, res, "c", 5))
    env.run()
    times = {name: t for t, name, _ in log}
    assert times["a"] == 0 and times["b"] == 0
    assert times["c"] == 5  # had to wait for a slot


def test_resource_fifo_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def user(env, res, name):
        req = res.request()
        yield req
        order.append(name)
        yield env.timeout(1)
        res.release(req)

    for name in "abcd":
        env.process(user(env, res, name))
    env.run()
    assert order == ["a", "b", "c", "d"]


def test_resource_release_without_grant_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    granted = res.request()
    waiting = res.request()
    with pytest.raises(RuntimeError):
        res.release(waiting)
    res.release(granted)


def test_resource_cancel_waiting_request():
    env = Environment()
    res = Resource(env, capacity=1)
    first = res.request()
    second = res.request()
    third = res.request()
    second.cancel()
    res.release(first)
    env.run()
    assert third.triggered
    assert not second.triggered


def test_resource_cancel_granted_request_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    req = res.request()
    with pytest.raises(RuntimeError):
        req.cancel()


def test_resource_counts():
    env = Environment()
    res = Resource(env, capacity=2)
    r1 = res.request()
    res.request()
    res.request()
    assert res.count == 2
    assert res.queue_length == 1
    res.release(r1)
    assert res.count == 2
    assert res.queue_length == 0


def test_capacity_must_be_positive():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_priority_resource_grants_lowest_priority_first():
    env = Environment()
    res = PriorityResource(env, capacity=1)
    order = []

    def user(env, res, name, prio, delay):
        yield env.timeout(delay)
        req = res.request(priority=prio)
        yield req
        order.append(name)
        yield env.timeout(10)
        res.release(req)

    env.process(user(env, res, "holder", 0, 0))
    env.process(user(env, res, "low", 5, 1))
    env.process(user(env, res, "high", 1, 2))
    env.run()
    assert order == ["holder", "high", "low"]


def test_store_fifo_put_get():
    env = Environment()
    store = Store(env)

    def producer(env, store):
        for i in range(3):
            yield store.put(i)
            yield env.timeout(1)

    def consumer(env, store, out):
        for _ in range(3):
            item = yield store.get()
            out.append((env.now, item))

    out = []
    env.process(producer(env, store))
    env.process(consumer(env, store, out))
    env.run()
    assert [item for _, item in out] == [0, 1, 2]


def test_store_get_blocks_until_item_available():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, store):
        item = yield store.get()
        got.append((env.now, item))

    def producer(env, store):
        yield env.timeout(7)
        yield store.put("late item")

    env.process(consumer(env, store))
    env.process(producer(env, store))
    env.run()
    assert got == [(7.0, "late item")]


def test_store_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    events = []

    def producer(env, store):
        yield store.put("a")
        events.append(("a in", env.now))
        yield store.put("b")
        events.append(("b in", env.now))

    def consumer(env, store):
        yield env.timeout(5)
        yield store.get()

    env.process(producer(env, store))
    env.process(consumer(env, store))
    env.run()
    assert events == [("a in", 0.0), ("b in", 5.0)]


def test_store_get_with_predicate_picks_matching_item():
    env = Environment()
    store = Store(env)
    store.put("apple")
    store.put("banana")
    store.put("cherry")

    def consumer(env, store):
        item = yield store.get(lambda s: s.startswith("b"))
        return item

    p = env.process(consumer(env, store))
    env.run()
    assert p.value == "banana"
    assert list(store.items) == ["apple", "cherry"]


def test_container_levels():
    env = Environment()
    c = Container(env, capacity=100, init=50)
    assert c.level == 50
    c.put(25)
    env.run()
    assert c.level == 75
    c.get(70)
    env.run()
    assert c.level == 5


def test_container_get_blocks_until_level_sufficient():
    env = Environment()
    c = Container(env, capacity=100, init=0)
    got = []

    def consumer(env, c):
        yield c.get(10)
        got.append(env.now)

    def producer(env, c):
        for _ in range(10):
            yield env.timeout(1)
            yield c.put(1)

    env.process(consumer(env, c))
    env.process(producer(env, c))
    env.run()
    assert got == [10.0]


def test_container_put_blocks_at_capacity():
    env = Environment()
    c = Container(env, capacity=10, init=10)
    done = []

    def producer(env, c):
        yield c.put(5)
        done.append(env.now)

    def consumer(env, c):
        yield env.timeout(3)
        yield c.get(5)

    env.process(producer(env, c))
    env.process(consumer(env, c))
    env.run()
    assert done == [3.0]


def test_container_init_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=20)
    with pytest.raises(ValueError):
        Container(env, capacity=10, init=-1)


def test_container_negative_amounts_rejected():
    env = Environment()
    c = Container(env, capacity=10)
    with pytest.raises(ValueError):
        c.put(-1)
    with pytest.raises(ValueError):
        c.get(-1)
