"""Calendar-queue kernel vs binary heap: equivalence and cancellation.

The calendar queue is a drop-in replacement for the heap behind
``Environment.schedule``/``cancel`` — same dispatch order, same
timestamps, same counters — so every test here drives both backends
through identical workloads and compares observable behaviour, plus
directed regressions for the amortized cancellation sweep (which must
stay O(log n) sweeps under mass cancellation instead of degenerating
into repeated O(n) heapify passes).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment

# Delays draw from a grid straddling the calendar bucket width (0.25 s)
# so runs exercise same-bucket collisions, same-instant batches, bucket
# boundaries, and the overflow (current-bucket arrival) path.
_DELAYS = (0.0, 0.05, 0.1, 0.25, 0.24999, 0.250001, 0.3, 0.5, 1.0,
           2.75, 10.0, 100.0)

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("sched"), st.sampled_from(range(len(_DELAYS)))),
        st.tuples(st.just("cancel"), st.integers(0, 200)),
        st.tuples(st.just("run"), st.sampled_from(range(len(_DELAYS)))),
    ),
    min_size=1, max_size=60)


def drive(queue: str, ops):
    """Run one schedule/cancel/run interleaving; return the dispatch log."""
    env = Environment(queue=queue)
    log = []
    scheduled = []

    def logger(tag):
        def cb(ev):
            log.append((env.now, tag))
        return cb

    for op, arg in ops:
        if op == "sched":
            ev = env.timeout(_DELAYS[arg])
            ev.add_callback(logger(len(scheduled)))
            scheduled.append(ev)
        elif op == "cancel":
            if scheduled:
                env.cancel(scheduled[arg % len(scheduled)])
        else:  # partial run, then keep scheduling relative to the new now
            env.run(until=env.now + _DELAYS[arg])
    env.run()
    stats = env.kernel_stats
    return log, env.now, stats["events_dispatched"], stats["events_cancelled"]


@given(_ops)
@settings(max_examples=120, deadline=None)
def test_calendar_matches_heap_on_random_interleavings(ops):
    """Identical dispatch order, timestamps, clock, and counters."""
    cal = drive("calendar", ops)
    heap = drive("heap", ops)
    assert cal == heap


def test_same_instant_events_dispatch_in_schedule_order():
    for queue in ("calendar", "heap"):
        env = Environment(queue=queue)
        order = []
        for i in range(50):
            env.timeout(1.0).add_callback(
                lambda ev, i=i: order.append(i))
        env.run()
        assert order == list(range(50))
        assert env.now == 1.0


def test_cancelled_events_never_fire():
    for queue in ("calendar", "heap"):
        env = Environment(queue=queue)
        fired = []
        evs = [env.timeout(t) for t in (0.1, 0.2, 0.3, 5.0)]
        for ev in evs:
            ev.add_callback(lambda e: fired.append(env.now))
        env.cancel(evs[1])
        env.cancel(evs[3])
        env.run()
        assert fired == [0.1, 0.3]
        stats = env.kernel_stats
        assert stats["events_cancelled"] == 2
        assert stats["events_dispatched"] == 2
        assert env.pending_count == 0


def test_mass_cancellation_uses_logarithmically_many_sweeps():
    """The O(n)-compaction regression (satellite of the fast-path work):
    cancelling almost everything must trigger at most O(log n) backing
    -store sweeps — each one removes >= 2/3 of residents — never a
    sweep per cancel. ``queue_compactions`` counts heapify passes in
    heap mode and bucket-filter sweeps in calendar mode."""
    n = 20_000
    for queue in ("heap", "calendar"):
        env = Environment(queue=queue)
        evs = [env.timeout(1000.0 + i * 1e-3) for i in range(n)]
        for ev in evs[: n - 1000]:
            env.cancel(ev)
        stats = env.kernel_stats
        assert stats["events_cancelled"] == n - 1000
        assert 1 <= stats["queue_compactions"] <= int(math.log2(n))
        # Physical residency stays within a constant factor of the live
        # population (sweep trigger: cancelled > 2x live + watermark).
        assert env.queue_depth() <= 3 * env.pending_count + 65
        env.run()
        assert env.kernel_stats["events_dispatched"] >= 1000


def test_cancel_heavy_churn_keeps_queue_bounded():
    """Steady schedule-then-cancel churn (the superseded-timer pattern)
    must not accumulate dead entries without bound."""
    for queue in ("heap", "calendar"):
        env = Environment(queue=queue)
        live = None
        for k in range(30_000):
            if live is not None:
                env.cancel(live)
            live = env.timeout(1e6 + k)  # far future, always superseded
        assert env.pending_count == 1
        assert env.queue_depth() <= 200
        assert env.kernel_stats["queue_compactions"] >= 10


def test_kernel_stats_counters_reconcile():
    for queue in ("calendar", "heap"):
        env = Environment(queue=queue)
        evs = [env.timeout(float(i % 7) * 0.1) for i in range(100)]
        for ev in evs[::3]:
            env.cancel(ev)
        env.run()
        stats = env.kernel_stats
        assert stats["queue"] == queue
        assert stats["events_scheduled"] == 100
        assert stats["events_cancelled"] == 34
        assert stats["events_dispatched"] == 66
        assert env.pending_count == 0
        assert env.queue_depth() == 0


def test_heap_mode_rejects_unknown_backend():
    import pytest
    with pytest.raises(ValueError):
        Environment(queue="splay")
