"""Tests for generator-coroutine processes."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, Interrupt


def test_process_runs_and_returns_value():
    env = Environment()

    def body(env):
        yield env.timeout(2.0)
        return "result"

    p = env.process(body(env))
    env.run()
    assert not p.is_alive
    assert p.value == "result"


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)


def test_yield_non_event_raises():
    env = Environment()

    def body(env):
        yield 42

    env.process(body(env))
    with pytest.raises(TypeError):
        env.run()


def test_waiting_on_another_process_gets_its_value():
    env = Environment()

    def child(env):
        yield env.timeout(3.0)
        return "child-value"

    def parent(env):
        value = yield env.process(child(env))
        return (env.now, value)

    p = env.process(parent(env))
    env.run()
    assert p.value == (3.0, "child-value")


def test_yielding_already_finished_process_resumes_immediately():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        return "early"

    child_proc = env.process(child(env))

    def parent(env):
        yield env.timeout(10.0)
        value = yield child_proc
        return (env.now, value)

    p = env.process(parent(env))
    env.run()
    assert p.value == (10.0, "early")


def test_process_failure_propagates_to_waiter():
    env = Environment()

    def child(env):
        yield env.timeout(1.0)
        raise ValueError("inner failure")

    def parent(env):
        try:
            yield env.process(child(env))
        except ValueError as exc:
            return f"caught {exc}"

    p = env.process(parent(env))
    env.run()
    assert p.value == "caught inner failure"


def test_unhandled_process_failure_raises_from_run():
    env = Environment()

    def body(env):
        yield env.timeout(1.0)
        raise RuntimeError("unhandled")

    env.process(body(env))
    with pytest.raises(RuntimeError, match="unhandled"):
        env.run()


def test_interrupt_wakes_process_with_cause():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as i:
            log.append((env.now, i.cause))

    def interrupter(env, victim):
        yield env.timeout(5.0)
        victim.interrupt(cause="wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(5.0, "wake up")]


def test_interrupted_process_does_not_get_stale_wakeup():
    env = Environment()
    resumes = []

    def sleeper(env):
        try:
            yield env.timeout(10.0)
            resumes.append("timeout")
        except Interrupt:
            resumes.append("interrupt")
        yield env.timeout(50.0)
        resumes.append("second sleep done")

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    # The original 10 s timeout must not resume the process a second time.
    assert resumes == ["interrupt", "second sleep done"]
    assert env.now == 51.0


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_rejected():
    env = Environment()

    def body(env):
        with pytest.raises(RuntimeError):
            env.active_process.interrupt()
        yield env.timeout(1.0)

    env.process(body(env))
    env.run()


def test_all_of_waits_for_every_event():
    env = Environment()

    def body(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        results = yield AllOf(env, [t1, t2])
        return (env.now, sorted(results.values()))

    p = env.process(body(env))
    env.run()
    assert p.value == (5.0, ["a", "b"])


def test_any_of_fires_on_first_event():
    env = Environment()

    def body(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        results = yield AnyOf(env, [t1, t2])
        return (env.now, list(results.values()))

    p = env.process(body(env))
    env.run()
    assert p.value == (1.0, ["fast"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def body(env):
        results = yield AllOf(env, [])
        return results

    p = env.process(body(env))
    env.run()
    assert p.value == {}


def test_condition_propagates_child_failure():
    env = Environment()

    def failer(env):
        yield env.timeout(1.0)
        raise KeyError("bad child")

    def body(env):
        try:
            yield AllOf(env, [env.timeout(9.0), env.process(failer(env))])
        except KeyError:
            return "failed"

    p = env.process(body(env))
    env.run()
    assert p.value == "failed"


def test_nested_processes_three_deep():
    env = Environment()

    def level3(env):
        yield env.timeout(1.0)
        return 3

    def level2(env):
        v = yield env.process(level3(env))
        yield env.timeout(1.0)
        return v + 10

    def level1(env):
        v = yield env.process(level2(env))
        return v + 100

    p = env.process(level1(env))
    env.run()
    assert p.value == 113
    assert env.now == 2.0


def test_many_concurrent_processes_complete():
    env = Environment()
    done = []

    def worker(env, i):
        yield env.timeout(i % 7)
        done.append(i)

    for i in range(200):
        env.process(worker(env, i))
    env.run()
    assert sorted(done) == list(range(200))
