"""Property-based invariants of the multi-tenant transfer scheduler.

Random acquire/hold/release/abort workloads are driven through a real
simulated clock, and every invariant is checked against the scheduler's
audit log (ground truth of each transition) plus the grants the workers
actually received:

- concurrency caps (per-server and per-link) are never exceeded, at any
  audited instant;
- the wait queue never exceeds ``max_queue_depth`` and overflow is
  rejected loudly with :class:`QueueFull`;
- the starvation bound holds: a grant's eligible-bypass count never
  exceeds ``aging_rounds`` plus the backlog it queued behind;
- completed bytes are conserved: per-ticket goodput counters sum to
  exactly the bytes workers reported on release;
- scheduling is deterministic: the same workload against a fresh
  environment replays an identical audit log.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rm.scheduler import QueueFull, SchedulerConfig, TransferScheduler
from repro.sim import Environment
from repro.sim.events import Event

MB = 2**20

# One workload op: which server/flow/link asks, how big, how long it
# holds the slot, when it starts, and whether it aborts while queued.
ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 2),                        # server index
        st.integers(0, 4),                        # flow index
        st.sampled_from([None, 0, 1]),            # link index
        st.floats(0.0, 64.0),                     # size (MiB)
        st.integers(1, 8),                        # requested streams
        st.integers(0, 3),                        # priority class
        st.floats(0.0, 5.0),                      # start delay (s)
        st.floats(0.0, 4.0),                      # hold time (s)
        st.sampled_from([None, 0.5, 2.0]),        # abort after (s)
    ),
    min_size=1, max_size=24)

config_strategy = st.builds(
    SchedulerConfig,
    per_server_cap=st.integers(1, 4),
    per_link_cap=st.sampled_from([None, 1, 2, 3]),
    max_queue_depth=st.integers(1, 8),
    quantum=st.sampled_from([1.0 * MB, 8.0 * MB, 64.0 * MB]),
    aging_rounds=st.integers(0, 5),
    stream_budget=st.sampled_from([None, 1, 4, 8]))


def run_workload(ops, config, audit=True):
    """Drive one workload; returns (scheduler, outcomes).

    ``outcomes`` is one record per op:
    ``("granted", grant, released_bytes)``, ``("rejected", None, 0)``,
    or ``("withdrawn", None, 0)``.
    """
    env = Environment()
    sched = TransferScheduler(env, config, audit=audit)
    outcomes = [None] * len(ops)

    def worker(i, server, flow, link, size, streams, priority, start,
               hold, abort_after):
        yield env.timeout(start)
        abort = None
        if abort_after is not None:
            abort = Event(env)

            def trip(ev=abort, delay=abort_after):
                yield env.timeout(delay)
                if not ev.triggered:
                    ev.succeed("abort")
            env.process(trip())
        try:
            grant = yield from sched.acquire(
                f"srv{server}", flow=f"flow{flow}", size=size * MB,
                link=(None if link is None else f"link{link}"),
                streams=streams, priority=priority, abort=abort)
        except QueueFull:
            outcomes[i] = ("rejected", None, 0.0)
            return
        if grant is None:
            outcomes[i] = ("withdrawn", None, 0.0)
            return
        yield env.timeout(hold)
        moved = grant.size * 0.5
        sched.release(grant, bytes_done=moved)
        outcomes[i] = ("granted", grant, moved)

    for i, op in enumerate(ops):
        env.process(worker(i, *op))
    env.run()
    return sched, outcomes


# -- caps --------------------------------------------------------------------

@given(ops_strategy, config_strategy)
@settings(max_examples=200, deadline=None)
def test_property_caps_never_exceeded(ops, config):
    """At every audited instant active <= per_server_cap and every
    link's admitted count <= per_link_cap."""
    sched, _ = run_workload(ops, config)
    for _t, _op, _server, _flow, _seq, active, _waiting, links \
            in sched.audit_log:
        assert 0 <= active <= config.per_server_cap
        if config.per_link_cap is not None:
            for _link, count in links:
                assert 0 <= count <= config.per_link_cap


@given(ops_strategy, config_strategy)
@settings(max_examples=200, deadline=None)
def test_property_queue_depth_bounded(ops, config):
    """Waiting never exceeds max_queue_depth; every overflow surfaced
    as a loud QueueFull rejection in the audit log."""
    sched, outcomes = run_workload(ops, config)
    rejects = 0
    for _t, op, _server, _flow, _seq, _active, waiting, _links \
            in sched.audit_log:
        assert waiting <= config.max_queue_depth
        if op == "reject":
            rejects += 1
            assert waiting == config.max_queue_depth
    assert rejects == sched.rejected
    assert rejects == sum(1 for o in outcomes if o[0] == "rejected")


# -- starvation bound --------------------------------------------------------

@given(ops_strategy, config_strategy)
@settings(max_examples=200, deadline=None)
def test_property_starvation_bounded(ops, config):
    """Aging caps how often an eligible head can be bypassed: every
    grant's bypass count <= aging_rounds + older waiters at enqueue."""
    _sched, outcomes = run_workload(ops, config)
    for kind, grant, _moved in outcomes:
        if kind != "granted":
            continue
        assert grant.bypasses <= config.aging_rounds + grant.backlog


# -- byte conservation -------------------------------------------------------

@given(ops_strategy, config_strategy)
@settings(max_examples=200, deadline=None)
def test_property_bytes_conserved(ops, config):
    """Per-ticket goodput counters sum to exactly the bytes released;
    nothing is invented, dropped, or double counted."""
    sched, outcomes = run_workload(ops, config)
    expected = {}
    for kind, grant, moved in outcomes:
        if kind == "granted":
            expected[grant.flow] = expected.get(grant.flow, 0.0) + moved
    assert set(sched.ticket_bytes) == set(expected)
    for flow, total in expected.items():
        # Tolerance only absorbs float summation order, not lost bytes.
        assert sched.ticket_bytes[flow] == pytest.approx(total, rel=1e-12)
    assert sched.total_bytes == pytest.approx(sum(expected.values()),
                                              rel=1e-12)
    # Every op reached a terminal outcome and counters reconcile.
    assert all(o is not None for o in outcomes)
    granted = sum(1 for o in outcomes if o[0] == "granted")
    withdrawn = sum(1 for o in outcomes if o[0] == "withdrawn")
    rejected = sum(1 for o in outcomes if o[0] == "rejected")
    assert sched.granted == granted
    assert sched.withdrawn == withdrawn
    assert sched.admitted == granted + withdrawn
    assert sched.admitted + rejected == len(ops)


# -- determinism -------------------------------------------------------------

@given(ops_strategy, config_strategy)
@settings(max_examples=200, deadline=None)
def test_property_deterministic_replay(ops, config):
    """The same workload replays to an identical audit log and stats
    against a fresh environment (fixed-seed reproducibility)."""
    sched_a, outcomes_a = run_workload(ops, config)
    sched_b, outcomes_b = run_workload(ops, config)
    assert sched_a.audit_log == sched_b.audit_log
    assert sched_a.stats() == sched_b.stats()
    for a, b in zip(outcomes_a, outcomes_b):
        assert a[0] == b[0]
        if a[0] == "granted":
            assert (a[1].seq, a[1].granted_at, a[1].streams,
                    a[1].bypasses) == \
                (b[1].seq, b[1].granted_at, b[1].streams, b[1].bypasses)


# -- directed behavioural checks ---------------------------------------------

def test_priority_class_preempts_queue_order():
    """An interactive (priority 0) arrival is admitted ahead of queued
    bulk (priority 1) requests once capacity frees."""
    env = Environment()
    sched = TransferScheduler(env, SchedulerConfig(per_server_cap=1,
                                                   aging_rounds=50))
    order = []

    def worker(name, priority, delay):
        yield env.timeout(delay)
        grant = yield from sched.acquire("srv", flow=name, size=1 * MB,
                                         priority=priority)
        order.append(name)
        yield env.timeout(1.0)
        sched.release(grant, bytes_done=1 * MB)

    env.process(worker("first-bulk", 1, 0.0))
    env.process(worker("queued-bulk", 1, 0.1))
    env.process(worker("interactive", 0, 0.2))
    env.run()
    assert order == ["first-bulk", "interactive", "queued-bulk"]


def test_aging_rescues_bypassed_bulk():
    """With aging_rounds=1, a twice-bypassed bulk head is force-granted
    ahead of an endless interactive stream (no starvation)."""
    env = Environment()
    sched = TransferScheduler(env, SchedulerConfig(per_server_cap=1,
                                                   aging_rounds=1))
    order = []

    def worker(name, priority, delay):
        yield env.timeout(delay)
        grant = yield from sched.acquire("srv", flow=name, size=1 * MB,
                                         priority=priority)
        order.append(name)
        yield env.timeout(1.0)
        sched.release(grant, bytes_done=1 * MB)

    env.process(worker("w0", 0, 0.0))
    env.process(worker("bulk", 5, 0.1))
    for i in range(4):
        env.process(worker(f"i{i}", 0, 0.2 + i * 0.01))
    env.run()
    # bulk is bypassed once (by i0), ages to 1, then wins the fast path.
    assert order.index("bulk") == 2


def test_stream_budget_split_across_active():
    """The grant's streams shrink as the server fills: budget 8 over an
    increasingly busy server hands out 8, then 4, then 2."""
    env = Environment()
    sched = TransferScheduler(env, SchedulerConfig(
        per_server_cap=4, stream_budget=8))
    got = []

    def worker(delay):
        yield env.timeout(delay)
        grant = yield from sched.acquire("srv", flow=f"f{delay}",
                                         size=1 * MB, streams=8)
        got.append(grant.streams)
        yield env.timeout(10.0)
        sched.release(grant)

    for i in range(3):
        env.process(worker(float(i)))
    env.run()
    assert got == [8, 4, 2]
