"""End-to-end verification: digest checks, quarantine, re-transfer.

Covers the request-manager side of the integrity pipeline: a delivered
file whose digest disagrees with the publish-time catalog digest is
discarded, its source replica quarantined (demoted in selection), and
the transfer retried from a different replica. Also pins the
scheduler-slot accounting on the verify-then-retransfer path: every
grant is released exactly once, under any mix of integrity faults.
"""

import pytest

from repro.data.digest import marks_of
from repro.gridftp import GridFtpConfig
from repro.rm import FileState
from repro.rm.resilience import FailureClass
from repro.rm.scheduler import SchedulerConfig
from repro.scenarios.esg import EsgTestbed


def make_testbed(seed=11, **kw):
    tb = EsgTestbed(seed=seed, with_tape=False,
                    file_size_override=8 * 2**20, **kw)
    tb.request_manager.config.verify_checksum = True
    tb.warm_nws(90.0)
    return tb


def holders(tb, name):
    """Every site whose GridFTP server holds a replica of ``name``."""
    return [s for s in tb.sites.values() if s.fs.exists(name)]


def first_files(tb, n=1):
    ds = tb.dataset_ids()[0]
    return ds, tb.metadata_catalog.resolve(ds, "tas")[:n]


def test_clean_transfer_verifies_against_catalog():
    tb = make_testbed()
    ds, names = first_files(tb, 2)
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=ticket.done)
    assert ticket.complete
    for fr in ticket.files:
        assert fr.state is FileState.DONE
        assert fr.verified
        assert fr.verify_seconds > 0.0
        assert fr.integrity_failures == 0
        assert marks_of(tb.client_fs.stat(fr.logical_file)) == ()
    assert not tb.request_manager.quarantined


def test_mismatch_quarantines_and_retransfers_elsewhere():
    """Corrupt every fast replica: the RM must detect each bad arrival,
    quarantine the source, and land the clean copy from the slow site."""
    tb = make_testbed()
    ds, names = first_files(tb, 1)
    name = names[0]
    sites = holders(tb, name)
    assert len(sites) >= 2
    # Keep exactly one (slow-WAN) replica pristine; corrupt the rest.
    keep = min(sites, key=lambda s: tb.topology.links[
        f"wan-{s.name}:fwd"].nominal_capacity)
    for site in sites:
        if site is not keep:
            site.server.corrupt_file(name, tag="at-rest@seed")
    ticket = tb.request_manager.submit([(ds, name)])
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.DONE
    assert fr.verified
    # Fast (corrupted) replicas are ranked first, so at least one bad
    # arrival was caught and retried from a different replica.
    assert fr.integrity_failures >= 1
    assert fr.chosen_location == keep.name
    assert marks_of(tb.client_fs.stat(name)) == ()
    quarantined = [k for k in tb.request_manager.quarantined
                   if k[1] == name]
    assert quarantined
    assert all(k[2] != keep.name for k in quarantined)


def test_all_replicas_corrupt_fails_with_integrity_class():
    tb = make_testbed()
    tb.request_manager.config.retry_limit = 1
    tb.request_manager.config.retry_backoff = 0.5
    ds, names = first_files(tb, 1)
    name = names[0]
    for site in holders(tb, name):
        site.server.corrupt_file(name, tag="at-rest@everywhere")
    ticket = tb.request_manager.submit([(ds, name)])
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.FAILED
    assert fr.failure_class is FailureClass.INTEGRITY
    assert fr.integrity_failures >= 1
    # The poisoned payload must never be left on the client disk.
    assert not tb.client_fs.exists(name)


def test_verify_off_delivers_corrupt_bytes_silently():
    """Without verification the corruption lands — the control that
    shows the digest check is what provides the protection."""
    tb = make_testbed()
    tb.request_manager.config.verify_checksum = False
    ds, names = first_files(tb, 1)
    name = names[0]
    for site in holders(tb, name):
        site.server.corrupt_file(name, tag="at-rest@everywhere")
    ticket = tb.request_manager.submit([(ds, name)])
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.DONE
    assert not fr.verified
    assert marks_of(tb.client_fs.stat(name))  # corrupt bytes delivered


# -- scheduler-slot conservation under integrity faults (satellite) ---------

@pytest.mark.parametrize("seed", [11, 23, 47])
def test_property_grants_equal_releases_under_integrity_faults(seed):
    """Every scheduler grant is released exactly once, even when the
    verify stage rejects arrivals and forces re-transfers."""
    tb = EsgTestbed(seed=seed, with_tape=False,
                    file_size_override=4 * 2**20,
                    scheduler=SchedulerConfig(per_server_cap=2,
                                              max_queue_depth=256),
                    config=GridFtpConfig(parallelism=2,
                                         verify_checksum=True))
    tb.scheduler.audit_log = []   # turn on transition auditing
    tb.warm_nws(90.0)
    ds, names = first_files(tb, 6)
    # Corrupt roughly half the replicas of every other file.
    for i, name in enumerate(names):
        sites = holders(tb, name)
        for site in sites[:(i % len(sites))]:
            site.server.corrupt_file(name, tag=f"at-rest@{seed}")
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=ticket.done)
    for fr in ticket.files:
        assert fr.state in (FileState.DONE, FileState.FAILED)
    ops = [entry[1] for entry in tb.scheduler.audit_log]
    grants = ops.count("grant")
    releases = ops.count("release")
    assert grants > 0
    assert grants == releases
    for server in tb.registry:
        assert tb.scheduler.active_count(server) == 0
        assert tb.scheduler.queue_depth(server) == 0
