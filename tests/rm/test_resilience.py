"""Tests for the RM's fault-tolerance layer: retry, breakers, deadlines."""

import pytest

from repro.net.faults import FaultSchedule
from repro.rm import FileState
from repro.rm.resilience import (
    BreakerBoard,
    BreakerState,
    CircuitBreaker,
    FailureClass,
    ResiliencePolicy,
    RetryPolicy,
)
from repro.scenarios.esg import EsgTestbed


class StubRng:
    """Deterministic stand-in for a sim RNG stream."""

    def __init__(self, values):
        self.values = list(values)

    def random(self):
        return self.values.pop(0)


# -- RetryPolicy --------------------------------------------------------------

def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_rounds=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=10.0, max_delay=5.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.0)


def test_retry_delay_grows_and_caps():
    p = RetryPolicy(max_rounds=5, base_delay=5.0, multiplier=2.0,
                    max_delay=18.0, jitter=0.0)
    assert p.delay(1) == pytest.approx(5.0)
    assert p.delay(2) == pytest.approx(10.0)
    assert p.delay(3) == pytest.approx(18.0)  # capped, not 20
    assert p.delay(4) == pytest.approx(18.0)
    with pytest.raises(ValueError):
        p.delay(0)


def test_retry_delay_jitter_bounds_and_determinism():
    p = RetryPolicy(base_delay=10.0, multiplier=1.0, max_delay=10.0,
                    jitter=0.25)
    # rng.random() = 0 → factor 1 - jitter; = 1 → factor 1 + jitter.
    assert p.delay(1, rng=StubRng([0.0])) == pytest.approx(7.5)
    assert p.delay(1, rng=StubRng([1.0])) == pytest.approx(12.5)
    assert p.delay(1, rng=StubRng([0.5])) == pytest.approx(10.0)
    assert p.delay(1, rng=None) == pytest.approx(10.0)


# -- CircuitBreaker -----------------------------------------------------------

def test_breaker_validation():
    with pytest.raises(ValueError):
        CircuitBreaker("h", failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker("h", reset_timeout=0.0)


def test_breaker_trips_after_threshold_and_sheds():
    b = CircuitBreaker("h", failure_threshold=3, reset_timeout=60.0)
    for t in (1.0, 2.0):
        b.record_failure(t)
        assert b.state is BreakerState.CLOSED
    b.record_failure(3.0)
    assert b.state is BreakerState.OPEN and b.trips == 1
    assert not b.allow(10.0)
    assert not b.allow(62.9)
    assert b.skips == 2


def test_breaker_half_open_probe_reopens_on_failure():
    b = CircuitBreaker("h", failure_threshold=1, reset_timeout=60.0)
    b.record_failure(0.0)
    assert b.state is BreakerState.OPEN
    assert b.allow(60.0)  # cooldown over: one probe allowed
    assert b.state is BreakerState.HALF_OPEN
    assert not b.allow(60.0)  # ...but only one
    b.record_failure(61.0)  # probe failed → straight back to OPEN
    assert b.state is BreakerState.OPEN and b.trips == 2
    assert not b.allow(100.0)


def test_breaker_half_open_probe_success_closes():
    b = CircuitBreaker("h", failure_threshold=2, reset_timeout=30.0)
    b.record_failure(0.0)
    b.record_failure(1.0)
    assert b.allow(31.0)
    b.record_success()
    assert b.state is BreakerState.CLOSED
    assert b.failures == 0 and b.opened_at is None
    # A fresh failure streak is needed to trip again.
    b.record_failure(40.0)
    assert b.state is BreakerState.CLOSED


def test_breaker_board_shares_per_host():
    board = BreakerBoard(failure_threshold=2, reset_timeout=50.0)
    a1 = board.for_host("a")
    a2 = board.for_host("a")
    b = board.for_host("b")
    assert a1 is a2 and a1 is not b
    assert a1.failure_threshold == 2 and a1.reset_timeout == 50.0
    a1.record_failure(0.0)
    a1.record_failure(1.0)
    assert not board.for_host("a").allow(2.0)
    assert board.total_trips == 1 and board.total_skips == 1
    assert board.snapshot() == {"a": "open", "b": "closed"}


# -- ResiliencePolicy ---------------------------------------------------------

def test_resilience_policy_validation():
    with pytest.raises(ValueError):
        ResiliencePolicy(breaker_failure_threshold=0)
    with pytest.raises(ValueError):
        ResiliencePolicy(breaker_reset_timeout=0.0)
    with pytest.raises(ValueError):
        ResiliencePolicy(file_deadline=-1.0)
    with pytest.raises(ValueError):
        ResiliencePolicy(ticket_deadline=0.0)


def test_resilience_policy_board_factory():
    res = ResiliencePolicy(breaker_failure_threshold=5,
                           breaker_reset_timeout=77.0)
    board = res.board()
    assert board is not res.board()  # fresh per ticket
    assert board.for_host("x").failure_threshold == 5
    assert board.for_host("x").reset_timeout == 77.0


def test_reliability_policy_clone_is_pristine():
    from repro.gridftp import ReliabilityPolicy
    policy = ReliabilityPolicy(min_rate=1000.0, grace_period=1.0,
                               consecutive_samples=2)
    policy.observe(5.0, 0.0)  # accumulate one low sample
    clone = policy.clone()
    assert clone is not policy
    assert clone.min_rate == policy.min_rate
    # The clone starts with a clean sample window: a single low sample
    # must not trigger it even though the original already has one.
    assert not clone.observe(5.0, 0.0)
    assert clone.observe(6.0, 0.0)


# -- integration: the hardened pipeline over the testbed ----------------------

def make_testbed(**kw):
    tb = EsgTestbed(seed=11, **kw)
    tb.warm_nws(90.0)
    return tb


def one_file(tb):
    ds = tb.dataset_ids()[0]
    return ds, tb.metadata_catalog.resolve(ds, "tas")[0]


def test_cancel_mid_backoff_exits_promptly():
    """A cancelled ticket must not sit out the full backoff delay."""
    res = ResiliencePolicy(retry=RetryPolicy(
        max_rounds=2, base_delay=500.0, multiplier=1.0,
        max_delay=500.0, jitter=0.0))
    tb = make_testbed(resilience=res)
    # Catalog down for the whole run: round 1's lookup fails fast, so
    # every file thread enters the 500 s backoff before round 2.
    tb.fault_injector().install(
        FaultSchedule().catalog_outage(0.0, 10_000.0, mode="fail"))
    ds, name = one_file(tb)
    t0 = tb.env.now
    ticket = tb.request_manager.submit([(ds, name)])

    def canceller():
        yield tb.env.timeout(5.0)
        ticket.cancel("user gave up")

    tb.env.process(canceller())
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.CANCELLED
    # Prompt: well before the 500 s backoff would have elapsed.
    assert tb.env.now - t0 < 10.0


def test_file_deadline_fails_file_as_deadline_class():
    tb = make_testbed(file_size_override=400 * 2**20)
    ds, name = one_file(tb)
    ticket = tb.request_manager.submit([(ds, name)], file_deadline=5.0)
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.FAILED
    assert fr.failure_class is FailureClass.DEADLINE
    assert fr.finished_at == pytest.approx(fr.deadline_at)
    assert ticket.done.triggered and ticket.complete


def test_no_replicas_is_permanent_lookup_failure():
    """No replicas never retries: it fails once, classified LOOKUP."""
    res = ResiliencePolicy(retry=RetryPolicy(max_rounds=4,
                                             base_delay=100.0,
                                             max_delay=100.0))
    tb = make_testbed(resilience=res)
    ds = tb.dataset_ids()[0]
    t0 = tb.env.now
    ticket = tb.request_manager.submit([(ds, "ghost.nc")])
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.FAILED
    assert fr.failure_class is FailureClass.LOOKUP
    assert tb.env.now - t0 < 50.0  # no backoff rounds were paid


def test_mds_outage_degrades_ranking_but_completes():
    """MDS down at submit: ranking falls back, the transfer still runs."""
    tb = make_testbed(resilience=ResiliencePolicy())
    tb.fault_injector().install(
        FaultSchedule().mds_outage(0.0, 3_000.0, mode="fail"))
    ds, name = one_file(tb)
    ticket = tb.request_manager.submit([(ds, name)])
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.DONE
    assert fr.degraded_rankings >= 1
    assert fr.failure_class is None


def test_retry_round_recovers_after_catalog_outage():
    """Lookup fails in round 1, the backoff outlives the outage, and
    round 2 completes the file."""
    res = ResiliencePolicy(retry=RetryPolicy(
        max_rounds=2, base_delay=30.0, multiplier=1.0, max_delay=30.0,
        jitter=0.0))
    tb = make_testbed(resilience=res)
    tb.fault_injector().install(
        FaultSchedule().catalog_outage(0.0, 20.0, mode="fail"))
    ds, name = one_file(tb)
    ticket = tb.request_manager.submit([(ds, name)])
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.DONE
    assert fr.failure_class is None
