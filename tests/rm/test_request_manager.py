"""Integration tests for the request manager over the full testbed."""

import pytest

from repro.gridftp import ReliabilityPolicy
from repro.net import FaultInjector, FaultSchedule, mbps
from repro.replica import RandomPolicy
from repro.rm import CorbaChannel, FileState, TransferMonitor
from repro.scenarios.esg import EsgTestbed


def make_testbed(**kw):
    tb = EsgTestbed(seed=11, **kw)
    tb.warm_nws(90.0)
    return tb


def first_files(tb, n=3, dataset=None):
    ds = dataset or tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:n]
    return ds, names


def test_multi_file_request_completes():
    tb = make_testbed()
    ds, names = first_files(tb, 3)
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=ticket.done)
    assert ticket.complete
    assert not ticket.failed_files
    for fr in ticket.files:
        assert fr.state is FileState.DONE
        assert tb.client_fs.exists(fr.logical_file)
        assert fr.chosen_location is not None
    assert ticket.bytes_done == pytest.approx(
        sum(tb.client_fs.stat(n).size for n in names))


def test_request_via_corba_channel():
    tb = make_testbed()
    ds, names = first_files(tb, 2)
    rpc = CorbaChannel(tb.env)

    def main():
        ticket = yield from rpc.call(
            tb.request_manager.request, [(ds, n) for n in names],
            n_items=len(names))
        return ticket

    ticket = tb.run_process(main())
    assert ticket.complete
    assert rpc.calls == 1


def test_nws_best_prefers_fast_sites():
    """With warmed forecasts, the RM should prefer the 622 Mb/s sites
    over the 155 Mb/s ones when both hold the file."""
    tb = make_testbed()
    ds, names = first_files(tb, 6)
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=ticket.done)
    fast_sites = {"anl", "lbnl-clipper", "lbnl-pdsf"}
    chosen = [fr.chosen_location for fr in ticket.files]
    # Disk replicas exist at 2 of 6 sites per file; the pdsf copy always
    # exists. NWS-best should mostly land on fast sites.
    fast_fraction = sum(1 for c in chosen if c in fast_sites) / len(chosen)
    assert fast_fraction >= 0.5


def test_unknown_file_fails_cleanly():
    tb = make_testbed()
    ds = tb.dataset_ids()[0]
    ticket = tb.request_manager.submit([(ds, "ghost.nc")])
    tb.env.run(until=ticket.done)
    assert len(ticket.failed_files) == 1
    assert ticket.files[0].state is FileState.FAILED
    assert "no replicas" in ticket.files[0].error


def test_tape_resident_file_staged_via_hrm():
    """A file only at LBNL-PDSF (tape) is staged, then transferred."""
    tb = make_testbed()
    ds = tb.dataset_ids()[0]
    # Remove every disk replica of one file from the catalog so only the
    # tape copy remains.
    name = tb.metadata_catalog.resolve(ds, "tas")[0]
    for loc in tb.replica_catalog.locations(ds):
        if loc.name != "lbnl-pdsf" and name in loc.files:
            tb.replica_catalog.remove_file_from_location(ds, loc.name,
                                                         name)
    ticket = tb.request_manager.submit([(ds, name)])
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.DONE
    assert fr.chosen_location == "lbnl-pdsf"
    pdsf = tb.sites["lbnl-pdsf"]
    assert pdsf.hrm.mss.stage_count >= 1
    assert pdsf.fs.exists(name)  # staged copy on the serving disk


def test_replica_switch_on_site_outage():
    """If the chosen site dies mid-transfer, the RM tries the next."""
    tb = make_testbed(file_size_override=400 * 2**20)
    ds, names = first_files(tb, 1)
    name = names[0]
    # Find which site the RM would choose: warm forecasts favour anl.
    # Take down anl's WAN link shortly after the transfer starts.
    # Fault start times are relative to install time (here t=90).
    sched = FaultSchedule().link_outage(
        "wan-anl:fwd", start=5.0, duration=3000.0,
        description="anl dark")
    FaultInjector(tb.env, tb.network, tb.dns).install(sched)
    tb.request_manager.config.stall_timeout = 8.0
    tb.request_manager.config.retry_limit = 1
    tb.request_manager.config.retry_backoff = 2.0
    ticket = tb.request_manager.submit([(ds, name)])
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.DONE
    # Either the first choice was not anl (fine) or a switch happened.
    if fr.tried_locations[0] == "anl":
        assert fr.replica_switches >= 1
        assert fr.chosen_location != "anl"


def test_reliability_policy_triggers_switch():
    """Degrade the chosen path to a trickle: the §7 plug-in fires."""
    tb = EsgTestbed(seed=11, file_size_override=400 * 2**20,
                    reliability=ReliabilityPolicy(
                        min_rate=mbps(5), grace_period=10.0,
                        consecutive_samples=3))
    tb.warm_nws(90.0)
    ds, names = first_files(tb, 1)
    # Throttle every fast site to a crawl mid-transfer.
    sched = FaultSchedule()
    for site in ("anl", "lbnl-clipper", "lbnl-pdsf"):
        sched.degrade(f"wan-{site}:fwd", start=3.0,
                      duration=4000.0, fraction=0.001)
    FaultInjector(tb.env, tb.network, tb.dns).install(sched)
    ticket = tb.request_manager.submit([(ds, names[0])])
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.DONE
    assert fr.replica_switches >= 1


def test_random_policy_works_end_to_end():
    tb = EsgTestbed(seed=13)
    tb.request_manager.policy = RandomPolicy(
        tb.env.rng.stream("selection"))
    tb.warm_nws(60.0)
    ds, names = first_files(tb, 2)
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=ticket.done)
    assert ticket.complete and not ticket.failed_files


def test_transfers_feed_nws_observations():
    tb = make_testbed()
    ds, names = first_files(tb, 1)
    ticket = tb.request_manager.submit([(ds, names[0])])
    tb.env.run(until=ticket.done)
    src_site = ticket.files[0].chosen_location
    server = tb.registry[
        tb.sites[src_site].hostname]
    fc = tb.nws.forecast(server.host.node, tb.client_host.node)
    assert fc is not None and fc.samples >= 1


def test_monitor_renders_figure4_panes():
    tb = make_testbed()
    ds, names = first_files(tb, 3)
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    monitor = TransferMonitor(tb.env, tb.request_manager, ticket,
                              period=1.0)
    tb.env.process(monitor.run())
    tb.env.run(until=ticket.done)
    out = monitor.render()
    assert "File Transfer Progress" in out
    assert "Replica Selections" in out
    assert "Messages" in out
    assert "TOTAL transferred" in out
    for n in names:
        assert n in out
    assert len(monitor.snapshots) >= 2
    # Snapshot totals are monotone nondecreasing.
    totals = [b for _, b in monitor.snapshots]
    assert all(b2 >= b1 - 1e-6 for b1, b2 in zip(totals, totals[1:]))


def test_monitor_validation():
    tb = make_testbed()
    ds, names = first_files(tb, 1)
    ticket = tb.request_manager.submit([(ds, names[0])])
    with pytest.raises(ValueError):
        TransferMonitor(tb.env, tb.request_manager, ticket, period=0)
    tb.env.run(until=ticket.done)


def test_progress_bar_rendering():
    from repro.rm import FileRequest
    fr = FileRequest("c", "f", size=100.0, bytes_done=50.0)
    bar = fr.progress_bar(width=10)
    assert bar == "[#####-----]"
    assert fr.fraction == 0.5
    done = FileRequest("c", "f", size=100.0, state=FileState.DONE)
    assert done.fraction == 1.0


def test_ticket_find_and_repr():
    tb = make_testbed()
    ds, names = first_files(tb, 2)
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    assert ticket.find(names[0]).logical_file == names[0]
    with pytest.raises(KeyError):
        ticket.find("missing")
    assert "RequestTicket" in repr(ticket)
    tb.env.run(until=ticket.done)


def test_corba_channel_validation():
    from repro.sim import Environment
    with pytest.raises(ValueError):
        CorbaChannel(Environment(), rtt=-1)


def test_multiple_users_served_concurrently():
    """§4: the RM serves 'multiple file transfers on behalf of multiple
    users concurrently' — three tickets submitted together all complete,
    and their transfers overlap in time."""
    tb = make_testbed(file_size_override=16 * 2**20)
    ds_a, ds_b = tb.dataset_ids()
    tickets = [
        tb.request_manager.submit(
            [(ds_a, n) for n in
             tb.metadata_catalog.resolve(ds_a, "tas")[:3]]),
        tb.request_manager.submit(
            [(ds_b, n) for n in
             tb.metadata_catalog.resolve(ds_b, "pr")[:3]]),
        tb.request_manager.submit(
            [(ds_a, n) for n in
             tb.metadata_catalog.resolve(ds_a, "clt")[3:6]]),
    ]
    for t in tickets:
        tb.env.run(until=t.done)
    assert all(t.complete and not t.failed_files for t in tickets)
    # Overlap: every ticket started before the first one finished.
    first_finish = min(max(f.finished_at for f in t.files)
                       for t in tickets)
    for t in tickets:
        assert t.submitted_at < first_finish


def test_spread_policy_uses_more_sites_than_greedy():
    from repro.replica import NwsSpreadPolicy

    def run(policy):
        tb = make_testbed(file_size_override=16 * 2**20)
        if policy is not None:
            tb.request_manager.policy = policy
        ds = tb.dataset_ids()[0]
        names = tb.metadata_catalog.resolve(ds, "tas")[:8]
        ticket = tb.request_manager.submit([(ds, n) for n in names])
        tb.env.run(until=ticket.done)
        return {f.chosen_location for f in ticket.files}

    greedy_sites = run(None)
    spread_sites = run(NwsSpreadPolicy(tolerance=0.6))
    assert len(spread_sites) >= len(greedy_sites)
    assert len(spread_sites) >= 3


def test_ticket_cancellation_stops_inflight_and_pending():
    """§4 'initiate, control and monitor': a user can abort a request;
    in-flight transfers stop, untouched files never start."""
    tb = make_testbed(file_size_override=200 * 2**20)
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:4]
    ticket = tb.request_manager.submit([(ds, n) for n in names])

    def canceller():
        yield tb.env.timeout(5.0)  # transfers are mid-flight
        ticket.cancel("user closed VCDAT")

    tb.env.process(canceller())
    tb.env.run(until=ticket.done)
    assert ticket.cancelled
    assert ticket.complete
    states = {fr.state for fr in ticket.files}
    assert FileState.CANCELLED in states
    assert FileState.DONE not in states  # 200 MiB needs >5 s at 100 Mb/s
    # Cancellation takes effect promptly for transfers; a file that was
    # mid-tape-staging finishes its (non-interruptible) stage first.
    assert tb.env.now < tb.request_manager.tickets[-1].submitted_at + 120


def test_cancel_before_start_skips_everything():
    tb = make_testbed()
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:2]
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    ticket.cancel()
    tb.env.run(until=ticket.done)
    assert all(fr.state is FileState.CANCELLED for fr in ticket.files)
    assert ticket.bytes_done == 0
