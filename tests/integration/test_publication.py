"""Integration: publishing new model output into the grid.

The producer-side workflow the introduction motivates: model output is
uploaded, ingested into HPSS (cache + background tape migration),
catalogued, replicated, and immediately fetchable by consumers.
"""

import pytest

from repro.scenarios import EsgTestbed
from repro.storage import FileObject

MB = 2 ** 20


@pytest.fixture
def tb():
    testbed = EsgTestbed(seed=22, file_size_override=16 * MB)
    testbed.warm_nws(60.0)
    return testbed


def publish_one(tb, name, size=16 * MB):
    """Upload from LLNL, ingest at PDSF, catalog."""
    llnl = tb.sites["llnl"]
    pdsf = tb.sites["lbnl-pdsf"]
    llnl.fs.create(name, size)

    def flow():
        session = yield from tb.gridftp.connect(tb.client_host,
                                                pdsf.hostname)
        yield from session.put(name, llnl.fs, llnl.host)
        session.close()
        yield from pdsf.hrm.mss.store(FileObject(name, size), "T-pub",
                                      0.1)

    tb.run_process(flow())
    return pdsf


def test_publish_ingest_and_fetch(tb):
    ds = "pcmdi.fresh.run1"
    tb.replica_catalog.create_collection(ds)
    pdsf = publish_one(tb, "fresh.m01.nc")
    tb.replica_catalog.register_location(
        ds, "lbnl-pdsf", "gsiftp", pdsf.hostname, 2811, "/hpss",
        files=["fresh.m01.nc"])
    tb.replica_catalog.register_logical_file(ds, "fresh.m01.nc", 16 * MB)
    # Durable on tape AND immediately serveable from cache/disk.
    assert pdsf.hrm.mss.tape.has("fresh.m01.nc")
    assert pdsf.hrm.mss.is_staged("fresh.m01.nc")
    assert pdsf.fs.exists("fresh.m01.nc")
    ticket = tb.request_manager.submit([(ds, "fresh.m01.nc")])
    tb.env.run(until=ticket.done)
    assert not ticket.failed_files
    assert tb.client_fs.exists("fresh.m01.nc")
    # The fetch was a cache hit: no tape stage was needed.
    assert pdsf.hrm.mss.stage_count == 0


def test_publish_then_replicate_then_spread_fetch(tb):
    ds = "pcmdi.fresh.run2"
    tb.replica_catalog.create_collection(ds)
    pdsf = publish_one(tb, "fresh2.nc")
    tb.replica_catalog.register_location(
        ds, "lbnl-pdsf", "gsiftp", pdsf.hostname, 2811, "/hpss",
        files=["fresh2.nc"])

    def replicate():
        stats = yield from tb.replica_manager.replicate_file(
            tb.client_host, ds, "fresh2.nc", "anl-pub",
            tb.sites["anl"].server)
        return stats

    stats = tb.run_process(replicate())
    assert stats.transferred_bytes == pytest.approx(16 * MB)
    assert tb.replica_manager.coverage(ds)["fresh2.nc"] == 2
    # The new replica serves the next fetch.
    ticket = tb.request_manager.submit([(ds, "fresh2.nc")])
    tb.env.run(until=ticket.done)
    assert ticket.files[0].chosen_location in ("anl-pub", "lbnl-pdsf")


def test_migration_survives_cache_pressure(tb):
    """The pin during migration keeps fresh data safe while the cache
    churns."""
    pdsf = tb.sites["lbnl-pdsf"]
    mss = pdsf.hrm.mss
    mss.cache.capacity = 64 * MB  # tiny cache

    def flow():
        ingest = tb.env.process(
            mss.store(FileObject("precious.nc", 32 * MB), "T-x", 0.0))
        # Churn the cache while migration is in flight.
        yield tb.env.timeout(1.0)
        for i in range(3):
            mss.cache.put(FileObject(f"churn{i}.nc", 10 * MB))
        yield ingest

    tb.run_process(flow())
    assert mss.tape.has("precious.nc")
    assert mss.migrations == 1
