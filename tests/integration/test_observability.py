"""Acceptance test for the observability tentpole.

One seeded demo run must yield, from the shared ULM log alone:
complete lifelines for every requested file whose per-stage durations
telescope to the observed transfer time; nonzero transfer counters and
latency histograms; and a causal span tree for the ticket.
"""

import pytest

from repro.esg import EarthSystemGrid
from repro.netlogger import NetLogger, reconstruct_lifelines
from repro.rm import TransferMonitor
from repro.scenarios.esg import EsgTestbed


@pytest.fixture(scope="module")
def run():
    esg = EarthSystemGrid.demo_testbed(seed=7)
    result, _ = esg.fetch_and_analyze("pcmdi.ncar_csm.run1", "tas",
                                      months=(6, 8))
    return esg.testbed, result


def test_every_file_has_a_complete_telescoping_lifeline(run):
    tb, result = run
    lifelines = reconstruct_lifelines(tb.logger.records)
    assert result.logical_files
    for name in result.logical_files:
        life = lifelines[name]
        assert life.outcome == "done"
        assert life.complete
        assert life.ttfb is not None and life.ttfb > 0
        # per-stage durations sum exactly to request→done wall time
        assert sum(life.stage_totals().values()) == \
            pytest.approx(life.finished_at - life.requested_at)


def test_metrics_registry_saw_the_transfers(run):
    tb, result = run
    metrics = tb.obs.metrics
    n = len(result.logical_files)
    assert metrics.counter("rm.transfers_total").total == n
    hist = metrics.histogram("rm.transfer_seconds")
    assert hist.total_count == n
    assert metrics.histogram("rm.ttfb_seconds").total_count == n
    assert metrics.counter("gridftp.transfers_total").total >= n
    text = metrics.render_prometheus()
    assert "rm_transfers_total" in text
    assert "rm_transfer_seconds_bucket" in text


def test_ticket_span_tree_covers_the_pipeline(run):
    tb, result = run
    trace_id = f"ticket-{result.ticket.id}"
    spans = tb.obs.tracer.for_trace(trace_id)
    names = [s.name for s in spans]
    assert "rm.ticket" in names[0:1] or names[0].startswith("rm")
    assert names.count("rm.file") == len(result.logical_files)
    assert "rm.attempt" in names
    assert all(not s.open for s in spans)
    tree = tb.obs.tracer.render_tree(trace_id)
    assert tree.startswith(f"trace {trace_id}")
    assert "rm.file" in tree


def test_monitor_renders_lifeline_events_and_samples_gauge():
    tb = EsgTestbed(seed=11)
    tb.warm_nws(90.0)
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:2]
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    monitor = TransferMonitor(tb.env, tb.request_manager, ticket,
                              period=1.0, obs=tb.obs)
    tb.env.process(monitor.run())
    tb.env.run(until=ticket.done)
    tb.env.run(until=tb.env.now + 2.0)  # let the final sample land
    out = monitor.render()
    # the Messages pane now shows this ticket's ULM lifeline events
    assert "rm.request" in out
    assert "rm.transfer.done" in out
    assert "--- Messages ---" in out
    gauge = tb.obs.metrics.gauge("monitor.sample")
    assert gauge.value(ticket=str(ticket.id)) == \
        pytest.approx(ticket.bytes_done)


def test_ring_buffer_caps_the_log_and_counts_drops():
    tb = EsgTestbed(seed=5, log_capacity=12)
    tb.warm_nws(120.0)
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:5]
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    tb.env.run(until=ticket.done)
    log = tb.logger
    assert isinstance(log, NetLogger)
    assert len(log.records) <= 12
    assert log.emitted > 12
    assert log.dropped == log.emitted - len(log.records)
    # the survivors are the newest records
    times = [r.t for r in log.records]
    assert times == sorted(times)
