"""End-to-end integration: the complete §7 demonstration as one test.

"First, we selected parameters to be visualized... the CDAT system
consulted its metadata database and identified the logical files of
interest. The CDAT system passed these logical file names to the
request manager, which performed replica selection and initiated
gridFTP data transfers... Once data transfer was complete, the CDAT
system analyzed and visualized the desired data."
"""

import numpy as np
import pytest

from repro.cdat import render_field, time_mean
from repro.data import GridSpec
from repro.esg import EarthSystemGrid
from repro.rm import TransferMonitor
from repro.scenarios import EsgTestbed


@pytest.fixture(scope="module")
def esg():
    return EarthSystemGrid(EsgTestbed(
        seed=3, materialize=True,
        grid=GridSpec(nlat=24, nlon=48, months=12)))


def test_complete_demo_flow(esg):
    tb = esg.testbed
    # 1. Selection (Figure 2).
    listing = esg.browse()
    assert {e["dataset"] for e in listing} == {"pcmdi.ncar_csm.run1",
                                               "pcmdi.pcm.b06.22"}
    # 2-4. Metadata → RM → replica selection → GridFTP → analysis.
    result, viz = esg.fetch_and_analyze("pcmdi.ncar_csm.run1", "tas",
                                        months=(1, 6))
    # Files landed locally with content.
    for name in result.logical_files:
        f = tb.client_fs.stat(name)
        assert f.content is not None and f.size == len(f.content)
    # Data identical to the generator's ground truth.
    from repro.data import ClimateModelRun
    truth_run = ClimateModelRun(model="NCAR_CSM", run="run1",
                                grid=tb.grid)
    truth = truth_run.generate_year(1995)
    np.testing.assert_allclose(result.dataset["tas"].data,
                               truth["tas"].data[:6], rtol=1e-12)
    # 5. Visualization (Figure 3).
    assert "scale:" in viz
    field = time_mean(result.dataset, "tas")
    assert field.shape == (24, 48)
    # Components actually involved:
    assert tb.gsi.handshakes >= 6
    assert tb.mds.directory.operations >= 6
    assert len(tb.logger.select(event="rm.transfer.done")) >= 6


def test_monitoring_and_logging_during_demo(esg):
    tb = esg.testbed
    ds = "pcmdi.pcm.b06.22"
    names = tb.metadata_catalog.resolve(ds, "pr")[:4]
    ticket = tb.request_manager.submit([(ds, n) for n in names])
    monitor = TransferMonitor(tb.env, tb.request_manager, ticket,
                              period=0.5)
    tb.env.process(monitor.run())
    tb.env.run(until=ticket.done)
    assert ticket.complete and not ticket.failed_files
    rendering = monitor.render()
    assert all(n in rendering for n in names)
    # NetLogger has a ULM line per completed transfer.
    ulm = tb.logger.dump_ulm()
    assert "NL.EVNT=rm.transfer.done" in ulm


def test_second_fetch_benefits_from_warm_forecasts(esg):
    """After real transfers, NWS observations sharpen selection: the
    same fetch repeats without failures and completes quickly."""
    tb = esg.testbed
    result, _ = esg.fetch_and_analyze("pcmdi.ncar_csm.run1", "clt",
                                      months=(1, 2), warm_nws=0.0)
    assert not result.ticket.failed_files
    # Observed pairs include the sites used earlier.
    assert len(tb.nws.monitored_pairs()) >= 7
