"""Tests for the simulated filesystem."""

import pytest

from repro.sim import Environment
from repro.storage import (
    FileExistsError_,
    FileNotFoundError_,
    FileObject,
    FileSystem,
    NoSpaceError,
)


def fs(capacity=1000.0):
    env = Environment()
    return env, FileSystem(env, "disk0", capacity=capacity, seek_time=0.01)


def test_create_stat_roundtrip():
    env, f = fs()
    f.create("a.nc", 100)
    assert f.stat("a.nc").size == 100
    assert f.exists("a.nc")
    assert len(f) == 1


def test_file_content_size_consistency():
    FileObject("x", 3, content=b"abc")  # ok
    with pytest.raises(ValueError):
        FileObject("x", 4, content=b"abc")
    with pytest.raises(ValueError):
        FileObject("x", -1)


def test_capacity_accounting():
    env, f = fs(capacity=1000)
    f.create("a", 600)
    assert f.free == 400
    with pytest.raises(NoSpaceError):
        f.create("b", 500)
    f.delete("a")
    assert f.free == 1000
    f.create("b", 500)


def test_overwrite_semantics():
    env, f = fs(capacity=1000)
    f.create("a", 600)
    with pytest.raises(FileExistsError_):
        f.create("a", 100)
    f.create("a", 900, overwrite=True)  # frees old 600 first
    assert f.used == 900


def test_missing_file_errors():
    env, f = fs()
    with pytest.raises(FileNotFoundError_):
        f.stat("nope")
    with pytest.raises(FileNotFoundError_):
        f.delete("nope")


def test_open_charges_seek_time():
    env, f = fs()
    f.create("a", 10)

    def main(env, f):
        file = yield from f.open("a")
        return (env.now, file.name)

    p = env.process(main(env, f))
    env.run()
    assert p.value == (0.01, "a")


def test_created_at_stamped():
    env, f = fs()

    def later(env, f):
        yield env.timeout(42.0)
        f.create("late", 1)

    env.process(later(env, f))
    env.run()
    assert f.stat("late").created_at == 42.0


def test_with_name_copy_preserves_bytes():
    orig = FileObject("a", 3, content=b"xyz", metadata={"var": "tas"})
    copy = orig.with_name("b")
    assert copy.name == "b"
    assert copy.content == b"xyz"
    assert copy.metadata == {"var": "tas"}
    copy.metadata["var"] = "pr"
    assert orig.metadata["var"] == "tas"  # deep enough copy


def test_iteration():
    env, f = fs()
    for i in range(5):
        f.create(f"f{i}", 10)
    assert sorted(x.name for x in f) == [f"f{i}" for i in range(5)]
