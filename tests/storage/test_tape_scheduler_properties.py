"""Property-based invariants of the batch tape scheduler.

Random multi-cartridge read workloads (mixed demand/prefetch priority,
staggered arrivals, 1-3 drives) run against a real simulated clock:

- liveness + the starvation bound: every submitted job is serviced, and
  the number of grants that bypass a queued job never exceeds
  ``aging_rounds`` plus the backlog it queued behind (same bound, and
  same proof shape, as the transfer scheduler's priority aging);
- bytes are conserved: the drives' ``bytes_read`` counters sum to
  exactly the sizes of the files read;
- the cache admission policy never sacrifices demand data to
  speculation: pinned and demand entries survive arbitrary prefetch
  churn (see also test_cache.py's churn property);
- scheduling is deterministic: the same workload against a fresh
  environment replays an identical (grant, drive, timing) trace.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.storage import DiskCache, FileObject, NoSpaceError, TapeLibrary, TapeSpec
from repro.storage.tape import PRIORITY_DEMAND, PRIORITY_PREFETCH

MB = 2**20

# One read request: cartridge, seek position, size, priority, arrival.
ops_strategy = st.lists(
    st.tuples(
        st.integers(0, 3),                      # cartridge index
        st.integers(0, 10),                     # position (tenths)
        st.integers(1, 50),                     # size (MiB)
        st.sampled_from([PRIORITY_DEMAND, PRIORITY_PREFETCH]),
        st.floats(0.0, 120.0),                  # arrival delay (s)
    ),
    min_size=1, max_size=24)

params_strategy = st.tuples(
    st.integers(1, 3),                          # drives
    st.integers(1, 6),                          # aging_rounds
)


def run_workload(ops, drives, aging_rounds):
    """Submit every op at its arrival time; returns (library, jobs)."""
    env = Environment()
    spec = TapeSpec(read_rate=10 * MB, mount_time=40.0,
                    max_seek_time=60.0, rewind_time=20.0)
    lib = TapeLibrary(env, drives=drives, spec=spec,
                      aging_rounds=aging_rounds)
    jobs = [None] * len(ops)
    for i, (cart, pos, size, _prio, _delay) in enumerate(ops):
        lib.register(FileObject(f"f{i}", size * MB), tape=f"T{cart}",
                     position=pos / 10)

    def submit(i, prio, delay):
        yield env.timeout(delay)
        jobs[i] = lib.submit_read(f"f{i}", priority=prio)

    for i, (_cart, _pos, _size, prio, delay) in enumerate(ops):
        env.process(submit(i, prio, delay))
    env.run()
    return lib, jobs


@given(ops_strategy, params_strategy)
@settings(max_examples=200, deadline=None)
def test_property_every_job_serviced_with_bounded_bypass(ops, params):
    drives, aging_rounds = params
    lib, jobs = run_workload(ops, drives, aging_rounds)
    assert all(j is not None and j.done.triggered for j in jobs)
    for j in jobs:
        # j.age counts grants that bypassed j while it was queued (it
        # stops changing once j is granted).
        assert j.age <= aging_rounds + j.backlog
        assert j.granted_at is not None and j.finished_at is not None
        assert j.granted_at >= j.enqueued_at
        assert j.finished_at > j.granted_at


@given(ops_strategy, params_strategy)
@settings(max_examples=200, deadline=None)
def test_property_bytes_conserved(ops, params):
    drives, aging_rounds = params
    lib, jobs = run_workload(ops, drives, aging_rounds)
    total_read = sum(d.bytes_read for d in lib.drives)
    assert total_read == pytest.approx(
        sum(size * MB for (_c, _p, size, _prio, _d) in ops))
    assert lib.jobs_done == len(ops)
    assert lib.queue_length == 0
    assert lib.idle_drive_count == drives


@given(ops_strategy, params_strategy)
@settings(max_examples=200, deadline=None)
def test_property_same_workload_identical_trace(ops, params):
    """Two fresh environments given the same workload produce
    bit-identical grant traces: same drive, same instants, same mount
    counts. (The scheduler iterates lists with explicit seq tiebreakers;
    any hidden set/dict-order dependence would show up here.)"""
    drives, aging_rounds = params

    def trace():
        lib, jobs = run_workload(ops, drives, aging_rounds)
        return ([(j.name, j.drive.name, j.granted_at, j.finished_at,
                  j.age) for j in jobs],
                lib.mounts_total, lib.mount_reuses,
                [d.mounts for d in lib.drives])

    assert trace() == trace()


# One cache op against a demand working set under prefetch pressure.
cache_ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["demand", "prefetch", "pin", "unpin"]),
        st.integers(0, 11),                     # file key
        st.integers(1, 40),                     # size
    ),
    min_size=1, max_size=60)


@given(cache_ops_strategy)
@settings(max_examples=200, deadline=None)
def test_property_prefetch_never_evicts_pinned_or_demand(ops):
    """No sequence of prefetch admissions may evict a pinned entry or
    any demand entry: speculation only ever displaces speculation."""
    c = DiskCache(Environment(), capacity=120, prefetch_share=0.5)
    pins = {}
    for op, key, size in ops:
        name = f"f{key}"
        if op == "pin":
            if c.kind(name) is not None:
                c.pin(name)
                pins[name] = pins.get(name, 0) + 1
            continue
        if op == "unpin":
            if pins.get(name, 0) > 0:
                c.unpin(name)
                pins[name] -= 1
            continue
        demand_resident = {n for n in c._entries
                           if c.kind(n) == "demand"}
        pinned_resident = {n for n in c._entries if c.pin_count(n) > 0}
        try:
            c.put(FileObject(name, float(size)), kind=op)
        except NoSpaceError:
            continue
        if op == "prefetch":
            survivors = set(c._entries)
            assert demand_resident <= survivors
            assert pinned_resident <= survivors
    assert c.used <= c.capacity
    assert c.prefetch_used <= c.prefetch_share * c.capacity + 1e-9
