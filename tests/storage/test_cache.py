"""Tests for the LRU disk cache, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.storage import DiskCache, FileObject, NoSpaceError


def cache(capacity=100.0):
    return DiskCache(Environment(), capacity=capacity)


def test_put_get_hit_miss_accounting():
    c = cache()
    c.put(FileObject("a", 10))
    assert c.get("a").name == "a"
    assert c.get("b") is None
    assert (c.hits, c.misses) == (1, 1)


def test_lru_eviction_order():
    c = cache(capacity=30)
    for name in ("a", "b", "c"):
        c.put(FileObject(name, 10))
    c.get("a")  # a becomes most recent
    c.put(FileObject("d", 10))  # evicts b (LRU)
    assert c.get("b") is None
    assert c.get("a") is not None
    assert c.evictions == 1


def test_contains_touches():
    c = cache(capacity=20)
    c.put(FileObject("a", 10))
    c.put(FileObject("b", 10))
    assert c.contains("a")  # touch a
    c.put(FileObject("c", 10))  # must evict b, not a
    assert c.get("a") is not None
    assert c.get("b") is None


def test_pinned_entries_survive_eviction():
    c = cache(capacity=30)
    c.put(FileObject("keep", 10))
    c.pin("keep")
    c.put(FileObject("b", 10))
    c.put(FileObject("c", 10))
    c.put(FileObject("d", 10))  # must evict b or c, not keep
    assert c.get("keep") is not None


def test_all_pinned_raises_no_space():
    c = cache(capacity=20)
    c.put(FileObject("a", 10))
    c.put(FileObject("b", 10))
    c.pin("a")
    c.pin("b")
    with pytest.raises(NoSpaceError):
        c.put(FileObject("c", 10))


def test_oversized_file_rejected():
    c = cache(capacity=10)
    with pytest.raises(NoSpaceError):
        c.put(FileObject("huge", 11))


def test_pin_unpin_nesting():
    c = cache()
    c.put(FileObject("a", 10))
    c.pin("a")
    c.pin("a")
    c.unpin("a")
    assert c.is_pinned("a")
    c.unpin("a")
    assert not c.is_pinned("a")
    with pytest.raises(RuntimeError):
        c.unpin("a")


def test_pin_absent_raises():
    c = cache()
    with pytest.raises(KeyError):
        c.pin("ghost")


def test_invalidate():
    c = cache()
    c.put(FileObject("a", 10))
    c.invalidate("a")
    assert c.get("a") is None
    assert c.used == 0
    c.invalidate("a")  # idempotent
    c.put(FileObject("b", 10))
    c.pin("b")
    with pytest.raises(RuntimeError):
        c.invalidate("b")


def test_duplicate_put_is_touch_not_double_count():
    c = cache(capacity=100)
    c.put(FileObject("a", 10))
    c.put(FileObject("a", 10))
    assert c.used == 10


def test_capacity_validation():
    with pytest.raises(ValueError):
        DiskCache(Environment(), capacity=0)


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 30)),
                min_size=1, max_size=60))
@settings(max_examples=80, deadline=None)
def test_property_used_never_exceeds_capacity(ops):
    """Whatever the access pattern, used <= capacity and used equals the
    sum of resident entry sizes."""
    c = DiskCache(Environment(), capacity=100)
    for key, size in ops:
        try:
            c.put(FileObject(f"f{key}", float(size)))
        except NoSpaceError:
            pass
    assert c.used <= c.capacity
    assert c.used == pytest.approx(
        sum(e.size for e in c._entries.values()))
