"""Tests for the LRU disk cache, including hypothesis invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment
from repro.storage import DiskCache, FileObject, NoSpaceError


def cache(capacity=100.0):
    return DiskCache(Environment(), capacity=capacity)


def test_put_get_hit_miss_accounting():
    c = cache()
    c.put(FileObject("a", 10))
    assert c.get("a").name == "a"
    assert c.get("b") is None
    assert (c.hits, c.misses) == (1, 1)


def test_lru_eviction_order():
    c = cache(capacity=30)
    for name in ("a", "b", "c"):
        c.put(FileObject(name, 10))
    c.get("a")  # a becomes most recent
    c.put(FileObject("d", 10))  # evicts b (LRU)
    assert c.get("b") is None
    assert c.get("a") is not None
    assert c.evictions == 1


def test_contains_touches():
    c = cache(capacity=20)
    c.put(FileObject("a", 10))
    c.put(FileObject("b", 10))
    assert c.contains("a")  # touch a
    c.put(FileObject("c", 10))  # must evict b, not a
    assert c.get("a") is not None
    assert c.get("b") is None


def test_pinned_entries_survive_eviction():
    c = cache(capacity=30)
    c.put(FileObject("keep", 10))
    c.pin("keep")
    c.put(FileObject("b", 10))
    c.put(FileObject("c", 10))
    c.put(FileObject("d", 10))  # must evict b or c, not keep
    assert c.get("keep") is not None


def test_all_pinned_raises_no_space():
    c = cache(capacity=20)
    c.put(FileObject("a", 10))
    c.put(FileObject("b", 10))
    c.pin("a")
    c.pin("b")
    with pytest.raises(NoSpaceError):
        c.put(FileObject("c", 10))


def test_oversized_file_rejected():
    c = cache(capacity=10)
    with pytest.raises(NoSpaceError):
        c.put(FileObject("huge", 11))


def test_pin_unpin_nesting():
    c = cache()
    c.put(FileObject("a", 10))
    c.pin("a")
    c.pin("a")
    c.unpin("a")
    assert c.is_pinned("a")
    c.unpin("a")
    assert not c.is_pinned("a")
    with pytest.raises(RuntimeError):
        c.unpin("a")


def test_pin_absent_raises():
    c = cache()
    with pytest.raises(KeyError):
        c.pin("ghost")


def test_invalidate():
    c = cache()
    c.put(FileObject("a", 10))
    c.invalidate("a")
    assert c.get("a") is None
    assert c.used == 0
    c.invalidate("a")  # idempotent
    c.put(FileObject("b", 10))
    c.pin("b")
    with pytest.raises(RuntimeError):
        c.invalidate("b")


def test_duplicate_put_is_touch_not_double_count():
    c = cache(capacity=100)
    c.put(FileObject("a", 10))
    c.put(FileObject("a", 10))
    assert c.used == 10


def test_capacity_validation():
    with pytest.raises(ValueError):
        DiskCache(Environment(), capacity=0)


@given(st.lists(st.tuples(st.integers(0, 20), st.integers(1, 30)),
                min_size=1, max_size=60))
@settings(max_examples=80, deadline=None)
def test_property_used_never_exceeds_capacity(ops):
    """Whatever the access pattern, used <= capacity and used equals the
    sum of resident entry sizes."""
    c = DiskCache(Environment(), capacity=100)
    for key, size in ops:
        try:
            c.put(FileObject(f"f{key}", float(size)))
        except NoSpaceError:
            pass
    assert c.used <= c.capacity
    assert c.used == pytest.approx(
        sum(e.size for e in c._entries.values()))


# -- prefetch admission ------------------------------------------------------------

def test_prefetch_budget_cap():
    c = DiskCache(Environment(), capacity=100, prefetch_share=0.3)
    with pytest.raises(NoSpaceError):
        c.put(FileObject("big", 40), kind="prefetch")
    c.put(FileObject("ok", 30), kind="prefetch")
    assert c.prefetch_used == 30


def test_prefetch_evicts_only_prefetch():
    """A prefetch insert may evict unpinned prefetch entries but never
    demand data, even unpinned demand data."""
    c = DiskCache(Environment(), capacity=100, prefetch_share=0.5)
    c.put(FileObject("d1", 40))                      # demand, unpinned
    c.put(FileObject("p1", 40), kind="prefetch")
    c.put(FileObject("p2", 40), kind="prefetch")     # evicts p1, not d1
    assert c.get("d1") is not None
    assert c.kind("p1") is None
    assert c.prefetch_evictions == 1
    # Pinning p2 promotes it to demand; now nothing is evictable for
    # speculation and the insert must be refused, touching neither entry.
    c.pin("p2")
    with pytest.raises(NoSpaceError):
        c.put(FileObject("p3", 40), kind="prefetch")
    assert c.get("d1") is not None and c.get("p2") is not None


def test_demand_evicts_prefetch_first():
    c = DiskCache(Environment(), capacity=100, prefetch_share=0.5)
    c.put(FileObject("old", 40))
    c.put(FileObject("spec", 40), kind="prefetch")
    c.get("spec")            # prefetch is *more* recent than old
    c.put(FileObject("new", 40))
    # Speculative bytes go first even though demand 'old' is the LRU.
    assert c.kind("spec") is None
    assert c.get("old") is not None


def test_pin_promotes_prefetch_to_demand():
    c = DiskCache(Environment(), capacity=100, prefetch_share=0.3)
    c.put(FileObject("p", 30), kind="prefetch")
    assert c.prefetch_used == 30
    c.pin("p")
    assert c.kind("p") == "demand"
    assert c.prefetch_used == 0       # budget released for new speculation
    c.put(FileObject("q", 30), kind="prefetch")
    c.unpin("p")


def test_demand_put_promotes_existing_prefetch():
    c = DiskCache(Environment(), capacity=100, prefetch_share=0.3)
    c.put(FileObject("p", 30), kind="prefetch")
    c.put(FileObject("p", 30))        # same bytes, now demanded
    assert c.kind("p") == "demand"
    assert c.prefetch_used == 0
    assert c.used == 30


def test_can_admit_prefetch():
    c = DiskCache(Environment(), capacity=100, prefetch_share=0.5)
    assert c.can_admit_prefetch(50)
    assert not c.can_admit_prefetch(51)          # over budget
    c.put(FileObject("p1", 50), kind="prefetch")
    assert c.can_admit_prefetch(50)              # p1 is evictable
    c.pin("p1")                                  # promoted + pinned
    assert not c.can_admit_prefetch(60)
    c.put(FileObject("d", 50))
    c.pin("d")
    # Budget free again but no bytes free and nothing evictable.
    assert not c.can_admit_prefetch(10)


def test_invalidate_prefetch_releases_budget():
    c = DiskCache(Environment(), capacity=100, prefetch_share=0.3)
    c.put(FileObject("p", 30), kind="prefetch")
    c.invalidate("p")
    assert c.prefetch_used == 0
    assert c.can_admit_prefetch(30)


def test_put_unknown_kind_rejected():
    c = cache()
    with pytest.raises(ValueError):
        c.put(FileObject("a", 10), kind="speculative")


def test_prefetch_share_validation():
    with pytest.raises(ValueError):
        DiskCache(Environment(), capacity=10, prefetch_share=1.5)


# -- accounting under churn --------------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["putd", "putp", "pin",
                                           "unpin", "inval"]),
                          st.integers(0, 9), st.integers(1, 30)),
                min_size=1, max_size=80))
@settings(max_examples=200, deadline=None)
def test_property_accounting_under_pin_churn(ops):
    """Under arbitrary demand/prefetch insert, pin/unpin, and invalidate
    churn: byte accounting stays exact, the prefetch budget is honoured,
    and pinned entries are never evicted."""
    c = DiskCache(Environment(), capacity=100, prefetch_share=0.4)
    pinned = {}
    for op, key, size in ops:
        name = f"f{key}"
        if op == "putd" or op == "putp":
            kind = "demand" if op == "putd" else "prefetch"
            before = {n for n in pinned if pinned[n] > 0}
            try:
                c.put(FileObject(name, float(size)), kind=kind)
            except NoSpaceError:
                pass
            for n in before:           # pins survive any eviction pass
                assert c.pin_count(n) == pinned[n]
        elif op == "pin":
            if c.kind(name) is not None:
                c.pin(name)
                pinned[name] = pinned.get(name, 0) + 1
        elif op == "unpin":
            if pinned.get(name, 0) > 0:
                c.unpin(name)
                pinned[name] -= 1
        elif op == "inval":
            if pinned.get(name, 0) == 0:
                c.invalidate(name)
    assert c.used == pytest.approx(
        sum(e.size for e in c._entries.values()))
    assert c.prefetch_used == pytest.approx(
        sum(e.size for n, e in c._entries.items()
            if c.kind(n) == "prefetch"))
    assert c.prefetch_used <= c.prefetch_share * c.capacity + 1e-9
    assert c.used <= c.capacity


@given(st.lists(st.tuples(st.sampled_from(["put", "scan"]),
                          st.integers(0, 9), st.integers(1, 30)),
                min_size=1, max_size=80))
@settings(max_examples=200, deadline=None)
def test_property_pins_protect_checksum_scans(ops):
    """A checksum verify scan pins the file it reads; however hard
    demand churn presses on the cache, a file mid-scan is never evicted
    and its pin count is exact. (The GridFTP CKSM path holds the HRM
    stage pin for the whole scan — this is the cache-level contract.)"""
    c = DiskCache(Environment(), capacity=100)
    scanning = set()  # files with an in-progress verify scan
    for op, key, size in ops:
        name = f"f{key}"
        if op == "put":
            try:
                c.put(FileObject(name, float(size)))
            except NoSpaceError:
                pass
            # Whatever the eviction pass did, every mid-scan file is
            # still resident and still pinned.
            for n in scanning:
                assert c.contains(n)
                assert c.is_pinned(n)
        else:  # toggle a scan: begin (pin) or finish (unpin)
            if name in scanning:
                c.unpin(name)
                scanning.discard(name)
            elif c.contains(name):
                c.pin(name)
                scanning.add(name)
    for n in sorted(scanning):   # finish outstanding scans
        c.unpin(n)
        assert c.contains(n)     # release alone never evicts
    assert not any(c.is_pinned(f"f{k}") for k in range(10))
    assert c.used == pytest.approx(
        sum(e.size for e in c._entries.values()))
