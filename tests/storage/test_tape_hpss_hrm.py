"""Tests for tape library, HPSS-like MSS, and the HRM."""

import pytest

from repro.sim import Environment
from repro.storage import (
    FileObject,
    FileSystem,
    HierarchicalResourceManager,
    MassStorageSystem,
    TapeLibrary,
    TapeSpec,
)

MB = 2 ** 20


def library(drives=1, **kw):
    env = Environment()
    spec = TapeSpec(read_rate=10 * MB, mount_time=40.0, max_seek_time=60.0,
                    rewind_time=20.0, **kw)
    return env, TapeLibrary(env, drives=drives, spec=spec)


def test_tape_spec_validation():
    with pytest.raises(ValueError):
        TapeSpec(read_rate=0)
    with pytest.raises(ValueError):
        TapeSpec(mount_time=-1)
    spec = TapeSpec()
    with pytest.raises(ValueError):
        spec.seek_time(1.5)


def test_read_costs_mount_seek_stream():
    env, lib = library()
    lib.register(FileObject("f", 100 * MB), tape="T1", position=0.5)

    def main(env, lib):
        f = yield from lib.read("f")
        return (env.now, f.name)

    p = env.process(main(env, lib))
    env.run()
    t, name = p.value
    # mount 40 + seek 30 + stream 10 s
    assert t == pytest.approx(40 + 30 + 10)
    assert name == "f"
    assert lib.drives[0].mounts == 1


def test_same_tape_reuse_skips_mount():
    env, lib = library()
    lib.register(FileObject("f1", 10 * MB), tape="T1", position=0.0)
    lib.register(FileObject("f2", 10 * MB), tape="T1", position=0.1)

    def main(env, lib):
        yield from lib.read("f1")
        t_mid = env.now
        yield from lib.read("f2")
        return (t_mid, env.now)

    p = env.process(main(env, lib))
    env.run()
    t_mid, t_end = p.value
    assert t_mid == pytest.approx(40 + 0 + 1)
    # second read: no mount, just seek 6 + stream 1
    assert t_end - t_mid == pytest.approx(6 + 1)


def test_tape_switch_pays_rewind_and_mount():
    env, lib = library()
    lib.register(FileObject("f1", 10 * MB), tape="T1", position=0.0)
    lib.register(FileObject("f2", 10 * MB), tape="T2", position=0.0)

    def main(env, lib):
        yield from lib.read("f1")
        t_mid = env.now
        yield from lib.read("f2")
        return env.now - t_mid

    p = env.process(main(env, lib))
    env.run()
    assert p.value == pytest.approx(20 + 40 + 0 + 1)  # rewind+mount+stream


def test_drive_contention_serializes():
    env, lib = library(drives=1)
    lib.register(FileObject("f1", 10 * MB), tape="T1", position=0.0)
    lib.register(FileObject("f2", 10 * MB), tape="T2", position=0.0)
    done = []

    def reader(env, lib, name):
        yield from lib.read(name)
        done.append((name, env.now))

    env.process(reader(env, lib, "f1"))
    env.process(reader(env, lib, "f2"))
    env.run()
    times = dict(done)
    assert times["f1"] == pytest.approx(41.0)
    assert times["f2"] == pytest.approx(41 + 20 + 40 + 1)


def test_two_drives_parallel():
    env, lib = library(drives=2)
    lib.register(FileObject("f1", 10 * MB), tape="T1", position=0.0)
    lib.register(FileObject("f2", 10 * MB), tape="T2", position=0.0)
    done = []

    def reader(env, lib, name):
        yield from lib.read(name)
        done.append(env.now)

    env.process(reader(env, lib, "f1"))
    env.process(reader(env, lib, "f2"))
    env.run()
    assert done == [pytest.approx(41.0), pytest.approx(41.0)]


def test_unknown_file_raises():
    env, lib = library()
    with pytest.raises(KeyError):
        list(lib.read("ghost"))


# -- MSS -----------------------------------------------------------------------

def mss_fixture(cache_capacity=500 * MB):
    env = Environment()
    mss = MassStorageSystem(env, cache_capacity=cache_capacity, drives=1)
    return env, mss


def test_mss_cache_hit_is_instant():
    env, mss = mss_fixture()
    mss.archive(FileObject("f", 100 * MB), tape="T1", position=0.0)

    def main(env, mss):
        yield from mss.retrieve("f")
        t_first = env.now
        yield from mss.retrieve("f")
        return (t_first, env.now)

    p = env.process(main(env, mss))
    env.run()
    t_first, t_second = p.value
    assert t_first > 0
    assert t_second == t_first  # hit: no time passes
    assert mss.stage_count == 1
    assert mss.is_staged("f")


def test_mss_estimate():
    env, mss = mss_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    est = mss.estimate_retrieve_time("f")
    assert est == pytest.approx(10.0)  # 140 MB / 14 MB/s, no mount counted


def test_mss_has():
    env, mss = mss_fixture()
    mss.archive(FileObject("f", MB), tape="T1", position=0.0)
    assert mss.has("f")
    assert not mss.has("ghost")


# -- HRM -----------------------------------------------------------------------

def hrm_fixture():
    env = Environment()
    mss = MassStorageSystem(env, cache_capacity=500 * MB, drives=1)
    serve_fs = FileSystem(env, "hrm-disk")
    hrm = HierarchicalResourceManager(env, mss, serve_fs)
    return env, mss, serve_fs, hrm


def test_hrm_stage_publishes_to_serving_fs():
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    req = hrm.request_stage("f")

    def main(env, req):
        file = yield req.ready
        return file.name

    p = env.process(main(env, req))
    env.run()
    assert p.value == "f"
    assert serve_fs.exists("f")
    assert req.stage_time > 0
    assert mss.cache.is_pinned("f")
    hrm.release("f")
    assert not mss.cache.is_pinned("f")


def test_hrm_deduplicates_concurrent_requests():
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    r1 = hrm.request_stage("f")
    r2 = hrm.request_stage("f")
    assert r1 is r2
    assert r1.waiters == 2
    env.run()
    assert mss.stage_count == 1


def test_hrm_already_staged_completes_immediately():
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 14 * MB), tape="T1", position=0.0)
    env.run(until=hrm.request_stage("f").ready)
    hrm.release("f")
    t = env.now
    req2 = hrm.request_stage("f")
    assert req2.ready.triggered
    assert req2.completed_at == t
    env.run()


def test_hrm_stage_failure_propagates():
    env, mss, serve_fs, hrm = hrm_fixture()
    req = hrm.request_stage("ghost")
    with pytest.raises(KeyError):
        env.run(until=req.ready)


def test_hrm_estimate_wait():
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    assert hrm.estimate_wait("f") > 0
    env.run(until=hrm.request_stage("f").ready)
    assert hrm.estimate_wait("f") == 0.0


# -- tape writes / archive ingest ------------------------------------------------

def test_tape_write_then_read_roundtrip():
    env, lib = library()

    def main(env, lib):
        yield from lib.write(FileObject("new.nc", 50 * MB), "T9", 0.3)
        t_written = env.now
        f = yield from lib.read("new.nc")
        return t_written, env.now, f.name

    p = env.process(main(env, lib))
    env.run()
    t_written, t_end, name = p.value
    # write: mount 40 + seek 18 + stream 5
    assert t_written == pytest.approx(40 + 18 + 5)
    # read reuses the mounted tape: seek 18 + stream 5
    assert t_end - t_written == pytest.approx(18 + 5)
    assert name == "new.nc"


def test_tape_write_position_validation():
    env, lib = library()
    with pytest.raises(ValueError):
        list(lib.write(FileObject("x", 1), "T", 1.5))


def test_mss_store_keeps_cache_copy_and_migrates():
    env, mss = mss_fixture()

    def main(env, mss):
        yield from mss.store(FileObject("fresh.nc", 140 * MB), "T2", 0.0)
        return env.now

    p = env.process(main(env, mss))
    env.run()
    assert mss.migrations == 1
    assert mss.is_staged("fresh.nc")          # readable from cache
    assert mss.tape.has("fresh.nc")           # durable on tape
    assert not mss.cache.is_pinned("fresh.nc")  # unpinned after migration

    def reread(env, mss):
        t0 = env.now
        yield from mss.retrieve("fresh.nc")
        return env.now - t0

    p2 = env.process(reread(env, mss))
    env.run()
    assert p2.value == 0.0  # cache hit: no tape involved
    assert mss.stage_count == 0


def test_mss_store_contends_with_staging():
    """An ingest and a stage share the single drive."""
    env, mss = mss_fixture()
    mss.archive(FileObject("old.nc", 140 * MB), tape="T1", position=0.0)
    done = []

    def ingest(env, mss):
        yield from mss.store(FileObject("new.nc", 140 * MB), "T2", 0.0)
        done.append(("ingest", env.now))

    def stage(env, mss):
        yield from mss.retrieve("old.nc")
        done.append(("stage", env.now))

    env.process(ingest(env, mss))
    env.process(stage(env, mss))
    env.run()
    times = dict(done)
    # Serialized on the one drive: the later finisher waits for the
    # earlier one plus a cartridge swap.
    assert abs(times["ingest"] - times["stage"]) > 40.0
