"""Tests for tape library, HPSS-like MSS, and the HRM."""

import pytest

from repro.sim import Environment
from repro.storage import (
    FileObject,
    FileSystem,
    HierarchicalResourceManager,
    MassStorageSystem,
    TapeLibrary,
    TapeSpec,
)

MB = 2 ** 20


def library(drives=1, **kw):
    env = Environment()
    spec = TapeSpec(read_rate=10 * MB, mount_time=40.0, max_seek_time=60.0,
                    rewind_time=20.0, **kw)
    return env, TapeLibrary(env, drives=drives, spec=spec)


def test_tape_spec_validation():
    with pytest.raises(ValueError):
        TapeSpec(read_rate=0)
    with pytest.raises(ValueError):
        TapeSpec(mount_time=-1)
    spec = TapeSpec()
    with pytest.raises(ValueError):
        spec.seek_time(1.5)


def test_read_costs_mount_seek_stream():
    env, lib = library()
    lib.register(FileObject("f", 100 * MB), tape="T1", position=0.5)

    def main(env, lib):
        f = yield from lib.read("f")
        return (env.now, f.name)

    p = env.process(main(env, lib))
    env.run()
    t, name = p.value
    # mount 40 + seek 30 + stream 10 s
    assert t == pytest.approx(40 + 30 + 10)
    assert name == "f"
    assert lib.drives[0].mounts == 1


def test_same_tape_reuse_skips_mount():
    env, lib = library()
    lib.register(FileObject("f1", 10 * MB), tape="T1", position=0.0)
    lib.register(FileObject("f2", 10 * MB), tape="T1", position=0.1)

    def main(env, lib):
        yield from lib.read("f1")
        t_mid = env.now
        yield from lib.read("f2")
        return (t_mid, env.now)

    p = env.process(main(env, lib))
    env.run()
    t_mid, t_end = p.value
    assert t_mid == pytest.approx(40 + 0 + 1)
    # second read: no mount, just seek 6 + stream 1
    assert t_end - t_mid == pytest.approx(6 + 1)


def test_tape_switch_pays_rewind_and_mount():
    env, lib = library()
    lib.register(FileObject("f1", 10 * MB), tape="T1", position=0.0)
    lib.register(FileObject("f2", 10 * MB), tape="T2", position=0.0)

    def main(env, lib):
        yield from lib.read("f1")
        t_mid = env.now
        yield from lib.read("f2")
        return env.now - t_mid

    p = env.process(main(env, lib))
    env.run()
    assert p.value == pytest.approx(20 + 40 + 0 + 1)  # rewind+mount+stream


def test_drive_contention_serializes():
    env, lib = library(drives=1)
    lib.register(FileObject("f1", 10 * MB), tape="T1", position=0.0)
    lib.register(FileObject("f2", 10 * MB), tape="T2", position=0.0)
    done = []

    def reader(env, lib, name):
        yield from lib.read(name)
        done.append((name, env.now))

    env.process(reader(env, lib, "f1"))
    env.process(reader(env, lib, "f2"))
    env.run()
    times = dict(done)
    assert times["f1"] == pytest.approx(41.0)
    assert times["f2"] == pytest.approx(41 + 20 + 40 + 1)


def test_two_drives_parallel():
    env, lib = library(drives=2)
    lib.register(FileObject("f1", 10 * MB), tape="T1", position=0.0)
    lib.register(FileObject("f2", 10 * MB), tape="T2", position=0.0)
    done = []

    def reader(env, lib, name):
        yield from lib.read(name)
        done.append(env.now)

    env.process(reader(env, lib, "f1"))
    env.process(reader(env, lib, "f2"))
    env.run()
    assert done == [pytest.approx(41.0), pytest.approx(41.0)]


def test_unknown_file_raises():
    env, lib = library()
    with pytest.raises(KeyError):
        list(lib.read("ghost"))


# -- MSS -----------------------------------------------------------------------

def mss_fixture(cache_capacity=500 * MB):
    env = Environment()
    mss = MassStorageSystem(env, cache_capacity=cache_capacity, drives=1)
    return env, mss


def test_mss_cache_hit_is_instant():
    env, mss = mss_fixture()
    mss.archive(FileObject("f", 100 * MB), tape="T1", position=0.0)

    def main(env, mss):
        yield from mss.retrieve("f")
        t_first = env.now
        yield from mss.retrieve("f")
        return (t_first, env.now)

    p = env.process(main(env, mss))
    env.run()
    t_first, t_second = p.value
    assert t_first > 0
    assert t_second == t_first  # hit: no time passes
    assert mss.stage_count == 1
    assert mss.is_staged("f")


def test_mss_estimate():
    env, mss = mss_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    est = mss.estimate_retrieve_time("f")
    assert est == pytest.approx(10.0)  # 140 MB / 14 MB/s, no mount counted


def test_mss_has():
    env, mss = mss_fixture()
    mss.archive(FileObject("f", MB), tape="T1", position=0.0)
    assert mss.has("f")
    assert not mss.has("ghost")


# -- HRM -----------------------------------------------------------------------

def hrm_fixture():
    env = Environment()
    mss = MassStorageSystem(env, cache_capacity=500 * MB, drives=1)
    serve_fs = FileSystem(env, "hrm-disk")
    hrm = HierarchicalResourceManager(env, mss, serve_fs)
    return env, mss, serve_fs, hrm


def test_hrm_stage_publishes_to_serving_fs():
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    req = hrm.request_stage("f")

    def main(env, req):
        file = yield req.ready
        return file.name

    p = env.process(main(env, req))
    env.run()
    assert p.value == "f"
    assert serve_fs.exists("f")
    assert req.stage_time > 0
    assert mss.cache.is_pinned("f")
    hrm.release("f")
    assert not mss.cache.is_pinned("f")


def test_hrm_deduplicates_concurrent_requests():
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    r1 = hrm.request_stage("f")
    r2 = hrm.request_stage("f")
    assert r1 is r2
    assert r1.waiters == 2
    env.run()
    assert mss.stage_count == 1


def test_hrm_already_staged_completes_immediately():
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 14 * MB), tape="T1", position=0.0)
    env.run(until=hrm.request_stage("f").ready)
    hrm.release("f")
    t = env.now
    req2 = hrm.request_stage("f")
    assert req2.ready.triggered
    assert req2.completed_at == t
    env.run()


def test_hrm_stage_failure_propagates():
    env, mss, serve_fs, hrm = hrm_fixture()
    req = hrm.request_stage("ghost")
    with pytest.raises(KeyError):
        env.run(until=req.ready)


def test_hrm_estimate_wait():
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    assert hrm.estimate_wait("f") > 0
    env.run(until=hrm.request_stage("f").ready)
    assert hrm.estimate_wait("f") == 0.0


# -- tape writes / archive ingest ------------------------------------------------

def test_tape_write_then_read_roundtrip():
    env, lib = library()

    def main(env, lib):
        yield from lib.write(FileObject("new.nc", 50 * MB), "T9", 0.3)
        t_written = env.now
        f = yield from lib.read("new.nc")
        return t_written, env.now, f.name

    p = env.process(main(env, lib))
    env.run()
    t_written, t_end, name = p.value
    # write: mount 40 + seek 18 + stream 5
    assert t_written == pytest.approx(40 + 18 + 5)
    # read reuses the mounted tape and the head is already at 0.3: stream 5
    assert t_end - t_written == pytest.approx(5)
    assert name == "new.nc"


def test_tape_write_position_validation():
    env, lib = library()
    with pytest.raises(ValueError):
        list(lib.write(FileObject("x", 1), "T", 1.5))


def test_mss_store_keeps_cache_copy_and_migrates():
    env, mss = mss_fixture()

    def main(env, mss):
        yield from mss.store(FileObject("fresh.nc", 140 * MB), "T2", 0.0)
        return env.now

    p = env.process(main(env, mss))
    env.run()
    assert mss.migrations == 1
    assert mss.is_staged("fresh.nc")          # readable from cache
    assert mss.tape.has("fresh.nc")           # durable on tape
    assert not mss.cache.is_pinned("fresh.nc")  # unpinned after migration

    def reread(env, mss):
        t0 = env.now
        yield from mss.retrieve("fresh.nc")
        return env.now - t0

    p2 = env.process(reread(env, mss))
    env.run()
    assert p2.value == 0.0  # cache hit: no tape involved
    assert mss.stage_count == 0


def test_mss_store_contends_with_staging():
    """An ingest and a stage share the single drive."""
    env, mss = mss_fixture()
    mss.archive(FileObject("old.nc", 140 * MB), tape="T1", position=0.0)
    done = []

    def ingest(env, mss):
        yield from mss.store(FileObject("new.nc", 140 * MB), "T2", 0.0)
        done.append(("ingest", env.now))

    def stage(env, mss):
        yield from mss.retrieve("old.nc")
        done.append(("stage", env.now))

    env.process(ingest(env, mss))
    env.process(stage(env, mss))
    env.run()
    times = dict(done)
    # Serialized on the one drive: the later finisher waits for the
    # earlier one plus a cartridge swap.
    assert abs(times["ingest"] - times["stage"]) > 40.0


# -- batch tape scheduler ----------------------------------------------------------

def submit_all(env, lib, names, **kw):
    """Submit reads for ``names`` in order; return the TapeJob list."""
    return [lib.submit_read(n, **kw) for n in names]


def test_back_to_back_same_tape_two_drives_mounts_once():
    """Sequential reads of one cartridge on a 2-drive library must go to
    the drive that already holds it — one mount total, not one per read
    (the old pool popped an arbitrary idle drive)."""
    env, lib = library(drives=2)
    lib.register(FileObject("f1", 10 * MB), tape="T1", position=0.1)
    lib.register(FileObject("f2", 10 * MB), tape="T1", position=0.2)

    def main(env, lib):
        yield from lib.read("f1")
        yield from lib.read("f2")

    env.run(until=env.process(main(env, lib)))
    assert lib.mounts_total == 1
    assert lib.mount_reuses == 1


def test_batch_groups_by_cartridge_fifo_does_not():
    """Interleaved T1/T2/T1/T2 arrivals on one drive: the batch policy
    pays one mount per cartridge, FIFO pays one per job."""
    def run(policy):
        env = Environment()
        spec = TapeSpec(read_rate=10 * MB, mount_time=40.0,
                        max_seek_time=60.0, rewind_time=20.0)
        lib = TapeLibrary(env, drives=1, spec=spec, policy=policy)
        for i, tape in enumerate(["T1", "T2", "T1", "T2"]):
            lib.register(FileObject(f"f{i}", 10 * MB), tape=tape,
                         position=0.1 * i)
        jobs = submit_all(env, lib, [f"f{i}" for i in range(4)])
        env.run()
        assert all(j.done.triggered for j in jobs)
        return lib.mounts_total, env.now

    batch_mounts, batch_makespan = run("batch")
    fifo_mounts, fifo_makespan = run("fifo")
    assert batch_mounts == 2
    assert fifo_mounts == 4
    assert batch_makespan < fifo_makespan


def test_concurrent_same_tape_jobs_never_double_mount():
    """Two same-cartridge jobs arriving together on a 2-drive library
    must share one mount: the second defers to the drive already
    mounting the tape instead of mounting a phantom copy (the grant
    tracks target_tape; loaded_tape only changes after the mount)."""
    env, lib = library(drives=2)
    lib.register(FileObject("f1", 10 * MB), tape="T1", position=0.1)
    lib.register(FileObject("f2", 10 * MB), tape="T1", position=0.2)
    jobs = submit_all(env, lib, ["f1", "f2"])
    env.run()
    assert all(j.done.triggered for j in jobs)
    assert lib.mounts_total == 1
    assert lib.mount_reuses == 1
    assert jobs[0].drive is jobs[1].drive


def test_affinity_waits_for_busy_drive_instead_of_remounting():
    """A job whose cartridge is spinning in a busy drive waits for that
    drive even when another drive sits idle: seconds of wait beat a
    rewind + mount."""
    env, lib = library(drives=2)
    lib.register(FileObject("a1", 10 * MB), tape="T1", position=0.1)
    lib.register(FileObject("b1", 10 * MB), tape="T2", position=0.1)
    lib.register(FileObject("a2", 10 * MB), tape="T1", position=0.2)

    def main():
        j1 = lib.submit_read("a1")          # drive0 mounts T1
        j2 = lib.submit_read("b1")          # drive1 mounts T2
        yield env.timeout(45.0)             # both mounted, mid-stream
        j3 = lib.submit_read("a2")          # T1 busy on drive0
        yield j3.done
        return j1, j2, j3

    j1, j2, j3 = env.run(until=env.process(main()))
    # j3 waited for drive0 (reuse) instead of remounting T1 on drive1.
    assert lib.mounts_total == 2
    assert lib.mount_reuses == 1
    assert j3.drive is j1.drive
    assert j3.granted_at >= j1.finished_at


def test_deferred_demand_lets_prefetch_use_idle_drive():
    """When every demand group is deferred behind a busy drive, a
    lower-priority prefetch group may still use an idle drive rather
    than leaving it parked."""
    from repro.storage.tape import PRIORITY_PREFETCH
    env, lib = library(drives=2)
    lib.register(FileObject("a1", 10 * MB), tape="T1", position=0.1)
    lib.register(FileObject("a2", 10 * MB), tape="T1", position=0.2)
    lib.register(FileObject("p1", 10 * MB), tape="T3", position=0.1)

    def main():
        j1 = lib.submit_read("a1")          # drive0 mounts T1
        yield env.timeout(41.0)             # mounted, streaming
        j2 = lib.submit_read("a2")          # deferred: T1 busy
        j3 = lib.submit_read("p1", priority=PRIORITY_PREFETCH)
        yield env.all_of([j2.done, j3.done])
        return j1, j2, j3

    j1, j2, j3 = env.run(until=env.process(main()))
    assert j3.drive is not j1.drive         # prefetch took the idle drive
    assert j2.drive is j1.drive             # demand followed its tape
    assert lib.mounts_total == 2


def test_scan_order_within_cartridge():
    """Within a mounted cartridge jobs are served in elevator order over
    seek position, not arrival order."""
    env, lib = library(drives=1)
    lib.register(FileObject("hi", 10 * MB), tape="T1", position=0.9)
    lib.register(FileObject("mid", 10 * MB), tape="T1", position=0.5)
    lib.register(FileObject("lo", 10 * MB), tape="T1", position=0.1)
    # Arrival order: hi (grabs the drive), mid, lo.
    jobs = {n: lib.submit_read(n) for n in ("hi", "mid", "lo")}
    env.run()
    order = sorted(jobs, key=lambda n: jobs[n].finished_at)
    # After 'hi' the head sits at 0.9; the upward sweep is exhausted, so
    # the scan wraps to the lowest position and works up.
    assert order == ["hi", "lo", "mid"]


def test_head_tracking_charges_relative_seek():
    """Seek cost is the wind distance from the current head position."""
    env, lib = library(drives=1)
    lib.register(FileObject("a", 10 * MB), tape="T1", position=0.5)
    lib.register(FileObject("b", 10 * MB), tape="T1", position=0.7)

    def main(env, lib):
        yield from lib.read("a")
        t_mid = env.now
        yield from lib.read("b")
        return t_mid

    p = env.process(main(env, lib))
    env.run()
    t_mid = p.value
    # First: mount 40 + seek 0.5*60 + stream 1.
    assert t_mid == pytest.approx(40 + 30 + 1)
    # Second: no mount, relative seek |0.7-0.5|*60 = 12 + stream 1.
    assert env.now - t_mid == pytest.approx(12 + 1)


def test_aging_bounds_starvation():
    """A job on an unpopular cartridge is bypassed at most aging_rounds
    times by batching before it is granted outright."""
    env = Environment()
    spec = TapeSpec(read_rate=10 * MB, mount_time=40.0,
                    max_seek_time=60.0, rewind_time=20.0)
    lib = TapeLibrary(env, drives=1, spec=spec, aging_rounds=2)
    lib.register(FileObject("victim", 10 * MB), tape="Tv", position=0.0)
    for i in range(6):
        lib.register(FileObject(f"p{i}", 10 * MB), tape="Tp",
                     position=i / 10)
    first = lib.submit_read("p0")        # takes the drive
    victim = lib.submit_read("victim")
    rest = [lib.submit_read(f"p{i}") for i in range(1, 6)]
    env.run()
    assert victim.done.triggered
    # Bypassed exactly aging_rounds times, then granted ahead of the
    # remaining popular-cartridge jobs.
    assert victim.age == 2
    later = [j for j in rest if j.granted_at > victim.granted_at]
    assert len(later) == 3


def test_demand_priority_beats_prefetch():
    """A demand read arriving after a queued prefetch is granted first."""
    env, lib = library(drives=1)
    lib.register(FileObject("busy", 10 * MB), tape="T1", position=0.0)
    lib.register(FileObject("spec", 10 * MB), tape="T2", position=0.0)
    lib.register(FileObject("hot", 10 * MB), tape="T3", position=0.0)
    from repro.storage.tape import PRIORITY_PREFETCH
    lib.submit_read("busy")                                   # in service
    pre = lib.submit_read("spec", priority=PRIORITY_PREFETCH)  # queued
    hot = lib.submit_read("hot")                               # queued later
    env.run()
    assert hot.granted_at < pre.granted_at


def test_stage_progress_watermark_event_timing():
    """at_bytes() fires at the exact instant the staged prefix crosses
    the threshold: mount + seek + fraction of the stream."""
    from repro.storage import StageProgress
    env, lib = library(drives=1)
    lib.register(FileObject("f", 100 * MB), tape="T1", position=0.5)
    progress = StageProgress(env, 100 * MB)
    gate = progress.at_bytes(25 * MB)     # registered before streaming
    lib.submit_read("f", progress=progress)
    fired = []
    gate.add_callback(lambda ev: fired.append(env.now))
    env.run()
    # mount 40 + seek 30, then 25 MB at 10 MB/s = 2.5 s into the stream.
    assert fired == [pytest.approx(40 + 30 + 2.5)]
    assert progress.completed
    assert progress.staged_bytes() == 100 * MB


def test_stage_progress_at_bytes_after_completion_is_immediate():
    from repro.storage import StageProgress
    env = Environment()
    progress = StageProgress(env, 50.0)
    progress._start(10.0)
    progress._finish()
    assert progress.at_bytes(50.0).triggered


# -- HRM pin refcounting (shared stages) -----------------------------------------

def test_hrm_pins_once_per_waiter():
    """N concurrent waiters on one stage => N pins, and each release
    balances exactly one (the old code pinned once for the group, so the
    first release left later transfers unprotected)."""
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    r1 = hrm.request_stage("f")
    r2 = hrm.request_stage("f")
    assert r1 is r2 and r1.waiters == 2
    env.run()
    assert mss.cache.pin_count("f") == 2
    hrm.release("f")
    assert mss.cache.pin_count("f") == 1   # second transfer still covered
    hrm.release("f")
    assert not mss.cache.is_pinned("f")
    hrm.release("f")                        # over-release is a no-op
    assert not mss.cache.is_pinned("f")


def test_hrm_fast_path_pins_per_caller():
    """Requests against an already-staged file each take their own pin."""
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 14 * MB), tape="T1", position=0.0)
    env.run(until=hrm.request_stage("f").ready)
    hrm.request_stage("f")
    assert mss.cache.pin_count("f") == 2
    hrm.release("f")
    hrm.release("f")
    assert not mss.cache.is_pinned("f")


def test_hrm_abandon_inflight_surrenders_waiter_slot():
    """A sharer that gives up mid-stage reduces the pins taken at
    completion; abandoning after completion balances like release."""
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    hrm.request_stage("f")
    hrm.request_stage("f")
    hrm.abandon("f")           # second caller's transfer died pre-stage
    env.run()
    assert mss.cache.pin_count("f") == 1
    hrm.abandon("f")           # first caller's transfer died post-stage
    assert not mss.cache.is_pinned("f")


def test_hrm_stage_request_ids_come_from_env():
    """Request ids are per-run (env.next_id), not process-global."""
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("a", MB), tape="T1", position=0.0)
    mss.archive(FileObject("b", MB), tape="T1", position=0.1)
    ra = hrm.request_stage("a")
    rb = hrm.request_stage("b")
    assert rb.id == ra.id + 1
    env2 = Environment()
    mss2 = MassStorageSystem(env2, cache_capacity=500 * MB, drives=1)
    hrm2 = HierarchicalResourceManager(env2, mss2,
                                       FileSystem(env2, "d2"))
    mss2.archive(FileObject("a", MB), tape="T1", position=0.0)
    assert hrm2.request_stage("a").id == ra.id   # fresh env, fresh ids
    env.run()
    env2.run()


# -- HRM prefetch ----------------------------------------------------------------

def test_hint_dataset_prefetches_siblings_in_idle_time():
    """Hinted siblings are staged during idle drive time, amortizing the
    mount; a later request for a prefetched file completes instantly."""
    env, mss, serve_fs, hrm = hrm_fixture()
    for i in range(3):
        mss.archive(FileObject(f"f{i}", 14 * MB), tape="T1",
                    position=i / 10)
    req = hrm.request_stage("f0")
    hrm.hint_dataset(["f0", "f1", "f2"])
    env.run()
    assert req.ready.triggered
    assert hrm.prefetch_issued == 2
    assert mss.is_staged("f1") and mss.is_staged("f2")
    assert mss.tape.mounts_total == 1          # one mount covered all three
    assert mss.cache.kind("f1") == "prefetch"
    # Demand catches up: instant hit, promoted to demand by the pin.
    r1 = hrm.request_stage("f1")
    assert r1.ready.triggered
    assert hrm.prefetch_hits == 1
    assert mss.cache.kind("f1") == "demand"
    env.run()


def test_demand_joining_inflight_prefetch_counts_hit():
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f0", 14 * MB), tape="T1", position=0.0)
    mss.archive(FileObject("f1", 140 * MB), tape="T1", position=0.5)
    env.run(until=hrm.request_stage("f0").ready)
    hrm.hint_dataset(["f1"])

    def later(env, hrm):
        yield env.timeout(1.0)       # prefetch of f1 is now in flight
        req = hrm.request_stage("f1")
        assert not req.prefetch and req.waiters == 1
        yield req.ready

    env.run(until=env.process(later(env, hrm)))
    assert hrm.prefetch_hits == 1
    assert mss.cache.pin_count("f1") == 1      # the demand caller's pin
    env.run()


def test_prefetch_skipped_when_cache_cannot_admit():
    """Inadmissible prefetches are skipped (candidate stays hinted), and
    demand entries are never evicted to make room for speculation."""
    env = Environment()
    mss = MassStorageSystem(env, cache_capacity=100 * MB, drives=1,
                            prefetch_share=0.25)
    serve_fs = FileSystem(env, "hrm-disk")
    hrm = HierarchicalResourceManager(env, mss, serve_fs)
    mss.archive(FileObject("hot", 60 * MB), tape="T1", position=0.0)
    mss.archive(FileObject("big", 50 * MB), tape="T1", position=0.5)
    env.run(until=hrm.request_stage("hot").ready)
    hrm.hint_dataset(["big"])      # 50 MB > 25 MB prefetch budget
    env.run()
    assert hrm.prefetch_issued == 0
    assert hrm.prefetch_skipped == 1
    assert mss.is_staged("hot")    # demand data untouched
    assert mss.cache.is_pinned("hot")


def test_hrm_outage_aborts_prefetch_without_unhandled_failure():
    """A prefetch killed by an HRM outage is counted, not raised —
    nobody waits on a speculative stage."""
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f0", 14 * MB), tape="T1", position=0.0)
    mss.archive(FileObject("f1", 140 * MB), tape="T1", position=0.5)
    env.run(until=hrm.request_stage("f0").ready)
    hrm.hint_dataset(["f1"])

    def chaos(env, hrm):
        yield env.timeout(1.0)
        hrm.fail_staging()

    env.process(chaos(env, hrm))
    env.run()                       # must not raise
    assert hrm.prefetch_aborted == 1


# -- HRM estimate_wait -----------------------------------------------------------

def test_estimate_wait_reflects_queue_depth():
    env, mss, serve_fs, hrm = hrm_fixture()
    for i in range(4):
        mss.archive(FileObject(f"f{i}", 140 * MB), tape=f"T{i}",
                    position=0.0)
    base = hrm.estimate_wait("f3")
    for i in range(3):
        mss.tape.submit_read(f"f{i}")
    deeper = hrm.estimate_wait("f3")
    # f0 is in service, f1/f2 queued: two queue slots' worth of penalty.
    spec = mss.tape.spec
    assert deeper == pytest.approx(
        base + 2 * (spec.mount_time + spec.max_seek_time / 2))
    env.run()


def test_estimate_wait_zero_for_prefetched_file():
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f0", 14 * MB), tape="T1", position=0.0)
    mss.archive(FileObject("f1", 14 * MB), tape="T1", position=0.1)
    env.run(until=hrm.request_stage("f0").ready)
    hrm.hint_dataset(["f1"])
    env.run()
    assert mss.cache.kind("f1") == "prefetch"
    assert hrm.estimate_wait("f1") == 0.0


def test_estimate_wait_uses_live_stream_progress():
    """Once the drive is streaming, the estimate is the remaining bytes
    at the drive rate — not the full pessimistic re-stage cost."""
    env, mss, serve_fs, hrm = hrm_fixture()
    mss.archive(FileObject("f", 140 * MB), tape="T1", position=0.0)
    req = hrm.request_stage("f")

    def probe(env, hrm):
        # Mount takes 40 s; at t=45 the stream has run 5 s of 10.
        yield env.timeout(45.0)
        return hrm.estimate_wait("f")

    p = env.process(probe(env, hrm))
    env.run()
    assert p.value == pytest.approx(5.0)
    assert req.ready.triggered
