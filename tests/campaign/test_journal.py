"""Property suite for the campaign journal.

Pins the three invariants recovery correctness rests on:

- **idempotent replay** — replaying a journal concatenated with itself
  (or with any prefix of itself, the crash/resume shape) equals
  replaying it once, for both states and byte totals;
- **monotone state machine** — a file that reaches VERIFIED never
  leaves it, whatever records arrive later;
- **serialize/parse round-trip** — the JSON-lines form rebuilds the
  same journal, and appends keep working after a round trip.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignJournal, CampaignState
from repro.campaign.journal import ALLOWED, transition_allowed

STATES = list(CampaignState)

# (file index, state index, nbytes) — applied through append(), which
# enforces the transition rules exactly like the live engine does.
ops_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, len(STATES) - 1),
              st.integers(0, 1000)),
    min_size=1, max_size=120)


def build(ops):
    journal = CampaignJournal()
    for i, (f, s, nbytes) in enumerate(ops):
        journal.append(f"f{f}", STATES[s], float(i), nbytes=float(nbytes))
    return journal


def fold_key(replayed):
    return {f: (e.state, e.delivered_bytes)
            for f, e in sorted(replayed.items())}


# -- transition table sanity -------------------------------------------------

def test_verified_is_terminal_in_the_table():
    assert ALLOWED[CampaignState.VERIFIED] == frozenset()
    assert not transition_allowed(CampaignState.VERIFIED,
                                  CampaignState.IN_FLIGHT)


def test_unknown_file_may_enter_any_state():
    for state in STATES:
        assert transition_allowed(None, state)


def test_append_rejects_illegal_transition():
    j = CampaignJournal()
    j.append("f", CampaignState.PENDING, 0.0)
    assert j.append("f", CampaignState.VERIFIED, 1.0) is None
    assert j.ignored == 1
    assert j.state("f") is CampaignState.PENDING
    assert len(j) == 1


# -- replay properties -------------------------------------------------------

@given(ops_strategy)
@settings(max_examples=200, deadline=None)
def test_property_replay_is_idempotent(ops):
    journal = build(ops)
    once = fold_key(journal.replay())
    twice = fold_key(journal.replay(journal.records + journal.records))
    assert once == twice
    assert once == fold_key(journal.replay(journal.records))


@given(ops_strategy, st.integers(0, 120))
@settings(max_examples=200, deadline=None)
def test_property_crash_resume_conserves_bytes(ops, cut):
    """Resume-after-crash replays (prefix + full journal): per-file
    states and delivered-byte totals must equal a single clean replay."""
    journal = build(ops)
    cut = min(cut, len(journal.records))
    prefix = journal.records[:cut]
    clean = fold_key(journal.replay())
    resumed = fold_key(journal.replay(prefix + journal.records))
    assert clean == resumed


@given(ops_strategy)
@settings(max_examples=200, deadline=None)
def test_property_verified_never_regresses(ops):
    """Once a file's applied state is VERIFIED, it stays VERIFIED —
    through further appends and through replay."""
    journal = CampaignJournal()
    hit = set()
    for i, (f, s, nbytes) in enumerate(ops):
        name = f"f{f}"
        journal.append(name, STATES[s], float(i), nbytes=float(nbytes))
        if journal.state(name) is CampaignState.VERIFIED:
            hit.add(name)
        assert all(journal.state(n) is CampaignState.VERIFIED
                   for n in hit)
    replayed = journal.replay()
    assert all(replayed[n].state is CampaignState.VERIFIED for n in hit)


@given(ops_strategy)
@settings(max_examples=200, deadline=None)
def test_property_replay_matches_live_state(ops):
    """The folded replay equals the state the journal tracked live."""
    journal = build(ops)
    replayed = journal.replay()
    assert {f: e.state for f, e in replayed.items()} == journal.states()


# -- persistence -------------------------------------------------------------

@given(ops_strategy)
@settings(max_examples=100, deadline=None)
def test_property_serialize_parse_round_trip(ops):
    journal = build(ops)
    clone = CampaignJournal.parse(journal.serialize())
    assert clone.records == journal.records
    assert clone.states() == journal.states()
    assert fold_key(clone.replay()) == fold_key(journal.replay())


def test_parse_continues_sequence():
    j = CampaignJournal()
    j.append("f", CampaignState.PENDING, 0.0)
    j.append("f", CampaignState.IN_FLIGHT, 1.0)
    clone = CampaignJournal.parse(j.serialize())
    rec = clone.append("f", CampaignState.DELIVERED, 2.0, nbytes=10.0)
    assert rec is not None
    assert rec.seq == 3  # seq keeps increasing across a round trip
    assert clone.state("f") is CampaignState.DELIVERED


def test_parse_tolerates_blank_lines_and_order():
    j = CampaignJournal()
    j.append("a", CampaignState.PENDING, 0.0)
    j.append("b", CampaignState.PENDING, 0.0)
    j.append("a", CampaignState.IN_FLIGHT, 1.0)
    lines = j.serialize().splitlines()
    scrambled = "\n\n".join(reversed(lines))
    clone = CampaignJournal.parse(scrambled)
    assert clone.states() == j.states()


def test_delivered_bytes_accumulate_only_applied_records():
    j = CampaignJournal()
    j.append("f", CampaignState.PENDING, 0.0)
    j.append("f", CampaignState.IN_FLIGHT, 1.0)
    j.append("f", CampaignState.DELIVERED, 2.0, nbytes=100.0)
    j.append("f", CampaignState.PENDING, 3.0)      # unverified; requeue
    j.append("f", CampaignState.IN_FLIGHT, 4.0)
    j.append("f", CampaignState.DELIVERED, 5.0, nbytes=100.0)
    j.append("f", CampaignState.VERIFIED, 6.0)
    entry = j.replay()["f"]
    assert entry.state is CampaignState.VERIFIED
    assert entry.delivered_bytes == pytest.approx(200.0)
