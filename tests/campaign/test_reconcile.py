"""Four-ledger campaign reconciliation."""

import pytest

from repro.campaign import (CampaignState, ReplicationCampaign,
                            plan_campaign, reconcile)
from repro.data.digest import add_mark
from repro.gridftp import GridFtpConfig
from repro.rm.scheduler import SchedulerConfig
from repro.scenarios.esg import EsgTestbed


def make_campaign(seed=1, verify=True, **campaign_kw):
    tb = EsgTestbed(seed=seed, years=1, with_tape=False,
                    file_size_override=256 * 1024,
                    scheduler=SchedulerConfig(max_queue_depth=1024))
    manifest, replicas = plan_campaign(tb.replica_catalog)
    rm = tb.add_client("mirror",
                       config=GridFtpConfig(parallelism=2,
                                            verify_checksum=verify))
    campaign_kw.setdefault("batch_size", 8)
    campaign_kw.setdefault("max_inflight", 3)
    camp = ReplicationCampaign(tb.env, rm, manifest, replicas,
                               **campaign_kw)
    return tb, rm, manifest, camp


def run_campaign(tb, camp):
    camp.start()
    p = tb.env.process(camp.wait())
    tb.env.run(until=p)
    return p.value


def test_clean_campaign_is_certified():
    tb, rm, manifest, camp = make_campaign()
    run_campaign(tb, camp)
    report = reconcile(camp)
    assert report.clean and report.exit_code == 0
    assert report.files == len(manifest)
    assert report.verified_files == len(manifest)
    assert report.verified_bytes == pytest.approx(manifest.total_bytes)
    assert report.states == {"verified": len(manifest)}
    # every verified file is attributed to a source site
    assert sum(t.files for t in report.sites.values()) == len(manifest)
    # the scheduler's independent ledger covers the journal's bytes
    assert report.scheduler_bytes is not None
    assert report.scheduler_bytes >= manifest.total_bytes - 0.5
    text = report.render()
    assert "verdict: CLEAN (0 discrepancies)" in text
    assert "per-site deliveries" in text


def test_post_hoc_corruption_is_flagged_per_file():
    tb, rm, manifest, camp = make_campaign(seed=2)
    run_campaign(tb, camp)
    victim = manifest.entries[0]
    add_mark(rm.dest_fs.stat(victim.logical_file), "bitrot")
    report = reconcile(camp)
    assert not report.clean and report.exit_code == 1
    hits = [f for f in report.discrepancies
            if f.name == "destination-digest-mismatch"]
    assert [f.file for f in hits] == [victim.key]
    assert "DISCREPANT" in report.render()


def test_deleted_destination_file_is_flagged():
    tb, rm, manifest, camp = make_campaign(seed=3)
    run_campaign(tb, camp)
    victim = manifest.entries[-1]
    rm.dest_fs.delete(victim.logical_file)
    report = reconcile(camp)
    hits = [f for f in report.discrepancies
            if f.name == "verified-missing-on-destination"]
    assert [f.file for f in hits] == [victim.key]


def test_interrupted_campaign_is_not_certified():
    """Reconciling mid-flight: files the journal has not carried to a
    terminal state are discrepancies, not silent omissions."""
    tb, rm, manifest, camp = make_campaign(seed=4)
    camp.start()
    tb.env.run(until=0.5)   # interrupt long before completion
    report = reconcile(camp)
    assert not report.clean
    names = {f.name for f in report.discrepancies}
    assert names <= {"journal-missing", "journal-nonterminal",
                     "scheduler-bytes-short", "journal-counter-drift"}
    assert names & {"journal-missing", "journal-nonterminal"}
    # per-state table still accounts for every manifest entry
    assert sum(report.states.values()) == len(manifest)


def test_failed_files_count_but_are_not_discrepancies():
    """A file the campaign *gave up on* is terminal and honestly
    journaled — the report itemizes it without failing certification."""
    tb, rm, manifest, camp = make_campaign(seed=5, max_file_attempts=2)
    rm.config.retry_limit = 1
    rm.config.retry_backoff = 0.5
    victim = manifest.entries[0]
    for site in tb.sites.values():
        if site.fs.exists(victim.logical_file):
            site.server.corrupt_file(victim.logical_file,
                                     tag="at-rest@everywhere")
    run_campaign(tb, camp)
    report = reconcile(camp)
    assert report.states.get("failed") == 1
    assert report.states.get("verified") == len(manifest) - 1
    assert report.verified_files == len(manifest) - 1
    assert camp.journal.state(victim.key) is CampaignState.FAILED
    assert all(f.file != victim.key for f in report.discrepancies)
    assert report.clean


def test_without_scheduler_ledger_check_is_skipped(monkeypatch):
    tb, rm, manifest, camp = make_campaign(seed=6)
    run_campaign(tb, camp)
    monkeypatch.setattr(rm, "scheduler", None)
    report = reconcile(camp)
    assert report.scheduler_bytes is None
    assert report.clean
