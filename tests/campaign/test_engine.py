"""Campaign engine tests: drive, verify, crash, resume, give up."""

import pytest

from repro.campaign import CampaignState, ReplicationCampaign, plan_campaign
from repro.data.digest import marks_of
from repro.gridftp import GridFtpConfig
from repro.net import FaultSchedule
from repro.rm.scheduler import SchedulerConfig
from repro.scenarios.esg import EsgTestbed


def make_campaign(seed=1, years=1, verify=True, **campaign_kw):
    tb = EsgTestbed(seed=seed, years=years, with_tape=False,
                    file_size_override=256 * 1024,
                    scheduler=SchedulerConfig(max_queue_depth=1024))
    manifest, replicas = plan_campaign(tb.replica_catalog)
    rm = tb.add_client("mirror",
                       config=GridFtpConfig(parallelism=2,
                                            verify_checksum=verify))
    campaign_kw.setdefault("batch_size", 8)
    campaign_kw.setdefault("max_inflight", 3)
    camp = ReplicationCampaign(tb.env, rm, manifest, replicas,
                               **campaign_kw)
    return tb, rm, manifest, camp


def run_campaign(tb, camp):
    camp.start()
    p = tb.env.process(camp.wait())
    tb.env.run(until=p)
    return p.value


def test_campaign_verifies_every_file():
    tb, rm, manifest, camp = make_campaign()
    report = run_campaign(tb, camp)
    assert len(manifest) > 0
    assert report["states"] == {"verified": len(manifest)}
    assert report["verified_retransfers"] == 0
    assert report["bytes_delivered"] == pytest.approx(
        manifest.total_bytes)
    assert report["verify_seconds"] > 0.0
    assert report["makespan"] > 0.0
    # Every journaled file landed clean on the mirror's disk.
    for entry in manifest:
        assert marks_of(rm.dest_fs.stat(entry.logical_file)) == ()


def test_campaign_size_only_when_verification_off():
    tb, rm, manifest, camp = make_campaign(verify=False)
    report = run_campaign(tb, camp)
    assert report["states"] == {"verified": len(manifest)}
    assert report["verify_seconds"] == 0.0
    notes = [r.note for r in camp.journal.records
             if r.state is CampaignState.VERIFIED]
    assert notes and all(n == "size-only" for n in notes)


def test_campaign_crash_resume_retransfers_nothing_verified():
    """Kill the campaign mid-run; the journal replay must re-queue only
    non-terminal files — never a VERIFIED one — and still finish."""
    tb, rm, manifest, camp = make_campaign(seed=2, years=2)
    inj = tb.fault_injector(crashables={"campaign": camp})
    inj.install(FaultSchedule().rm_crash("campaign", 1.0, 0.5))
    report = run_campaign(tb, camp)
    assert report["crashes"] == 1
    assert report["resumes"] == 1
    assert report["states"] == {"verified": len(manifest)}
    assert report["verified_retransfers"] == 0
    # The crash may force re-transfer of unverified in-flight bytes,
    # but never more than what was in flight at the crash.
    assert report["bytes_retransferred"] < manifest.total_bytes / 2
    resumed = [r for r in camp.journal.records if r.note == "resume"]
    assert resumed  # the restart actually re-queued work
    for entry in manifest:
        assert marks_of(rm.dest_fs.stat(entry.logical_file)) == ()


def test_campaign_detects_at_rest_corruption_and_heals():
    tb, rm, manifest, camp = make_campaign(seed=3)
    # Corrupt one replica of each of the first three files (another
    # clean replica always remains).
    poisoned = 0
    for entry in manifest.entries[:3]:
        sites = [s for s in tb.sites.values()
                 if s.fs.exists(entry.logical_file)]
        if len(sites) >= 2:
            sites[0].server.corrupt_file(entry.logical_file,
                                         tag="at-rest@test")
            poisoned += 1
    assert poisoned
    report = run_campaign(tb, camp)
    assert report["states"] == {"verified": len(manifest)}
    assert report["corruptions_caught"] >= 0  # rank may dodge bad copies
    for entry in manifest:
        assert marks_of(rm.dest_fs.stat(entry.logical_file)) == ()


def test_campaign_gives_up_after_attempt_budget():
    tb, rm, manifest, camp = make_campaign(seed=4, max_file_attempts=2)
    rm.config.retry_limit = 1
    rm.config.retry_backoff = 0.5
    victim = manifest.entries[0]
    for site in tb.sites.values():
        if site.fs.exists(victim.logical_file):
            site.server.corrupt_file(victim.logical_file,
                                     tag="at-rest@everywhere")
    report = run_campaign(tb, camp)
    assert report["states"].get("failed") == 1
    assert report["states"].get("verified") == len(manifest) - 1
    assert camp.journal.state(victim.key) is CampaignState.FAILED
    assert not rm.dest_fs.exists(victim.logical_file)


def test_campaign_validation():
    tb, rm, manifest, camp = make_campaign()
    with pytest.raises(ValueError):
        ReplicationCampaign(tb.env, rm, manifest, {}, batch_size=0)
    with pytest.raises(ValueError):
        ReplicationCampaign(tb.env, rm, manifest, {}, max_inflight=0)
    camp.start()
    with pytest.raises(RuntimeError):
        camp.start()


def test_crash_is_idempotent_and_restart_needs_crash():
    tb, rm, manifest, camp = make_campaign()
    camp.restart()          # not down: no-op
    assert camp.resumes == 0
    camp.start()
    camp.crash()
    camp.crash()            # second crash is a no-op
    assert camp.crashes == 1
    assert camp.down
