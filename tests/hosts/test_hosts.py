"""Tests for the host model (CPU, disk, NIC bottleneck links)."""

import pytest

from repro.hosts import CpuModel, DiskArray, DiskSpec, Host, HostSpec
from repro.net import FluidNetwork, Topology, gbps, mbps, to_mbps
from repro.sim import Environment


# -- CpuModel -----------------------------------------------------------------

def test_cpu_cap_rises_with_coalescing():
    base = CpuModel(coalesce=1)
    coalesced = base.with_coalescing(8)
    assert coalesced.throughput_cap > 2 * base.throughput_cap


def test_cpu_cap_rises_with_jumbo_frames():
    base = CpuModel(coalesce=1)
    jumbo = base.with_jumbo_frames()
    assert jumbo.throughput_cap > base.throughput_cap
    assert jumbo.mtu == 9000.0


def test_default_cpu_matches_paper_regime():
    """Coalescing on: close to GbE line rate, CPU ~100%. Off: well below."""
    on = CpuModel()  # coalesce=8 default
    off = on.with_coalescing(1)
    assert mbps(700) < on.throughput_cap < gbps(1.3)
    assert off.throughput_cap < mbps(500)
    # At its own cap the CPU is saturated.
    assert on.utilization(on.throughput_cap) == pytest.approx(1.0)


def test_cpu_utilization_clamped_and_validated():
    cpu = CpuModel()
    assert cpu.utilization(0) == 0.0
    assert cpu.utilization(1e12) == 1.0
    with pytest.raises(ValueError):
        cpu.utilization(-1)


def test_cpu_validation():
    with pytest.raises(ValueError):
        CpuModel(copy_cost_per_byte=0)
    with pytest.raises(ValueError):
        CpuModel(mtu=0)
    with pytest.raises(ValueError):
        CpuModel(coalesce=0)


# -- DiskArray -----------------------------------------------------------------

def test_single_disk_has_no_raid_overhead():
    d = DiskArray(DiskSpec(rate=30 * 2**20), count=1)
    assert d.rate == 30 * 2**20


def test_raid_scales_with_overhead():
    d = DiskArray(DiskSpec(rate=30 * 2**20), count=4, raid_overhead=0.05)
    assert d.rate == pytest.approx(4 * 30 * 2**20 * 0.95)


def test_disk_validation():
    with pytest.raises(ValueError):
        DiskSpec(rate=0)
    with pytest.raises(ValueError):
        DiskSpec(seek_time=-1)
    with pytest.raises(ValueError):
        DiskArray(count=0)
    with pytest.raises(ValueError):
        DiskArray(raid_overhead=1.0)


# -- HostSpec -----------------------------------------------------------------

def test_line_rate_bonded_and_bus_capped():
    spec = HostSpec(nic_rate=gbps(1), nic_count=2, bus_rate=None)
    assert spec.line_rate == gbps(2)
    capped = HostSpec(nic_rate=gbps(1), nic_count=2, bus_rate=133 * 2**20)
    assert capped.line_rate == 133 * 2**20


def test_spec_validation():
    with pytest.raises(ValueError):
        HostSpec(nic_rate=0)
    with pytest.raises(ValueError):
        HostSpec(nic_count=0)
    with pytest.raises(ValueError):
        HostSpec(bus_rate=0)


# -- Host wiring ----------------------------------------------------------------

def two_hosts(spec_a=None, spec_b=None, wan=gbps(2.5), latency=0.008):
    env = Environment(seed=5)
    topo = Topology()
    a = Host(topo, "a", site="dallas", spec=spec_a)
    b = Host(topo, "b", site="berkeley", spec=spec_b)
    a.uplink("r-dallas")
    b.uplink("r-berkeley")
    topo.duplex_link("r-dallas", "r-berkeley", wan, latency, name="wan")
    return env, topo, FluidNetwork(env, topo), a, b


def test_duplicate_host_name_rejected():
    topo = Topology()
    Host(topo, "x")
    with pytest.raises(ValueError):
        Host(topo, "x")


def test_endpoint_names():
    topo = Topology()
    h = Host(topo, "w1")
    assert h.endpoint("store") == "host:w1:store"
    assert h.endpoint("app") == "host:w1:app"
    assert h.endpoint("net") == "w1"
    with pytest.raises(ValueError):
        h.endpoint("gpu")


def test_store_to_store_path_traverses_all_bottlenecks():
    env, topo, net, a, b = two_hosts()
    path = topo.path(a.store_node, b.store_node)
    names = [l.name for l in path]
    assert "host:a:disk:out" in names
    assert "host:a:cpu:out" in names
    assert "host:a:nic:out" in names
    assert "wan:fwd" in names
    assert "host:b:nic:in" in names
    assert "host:b:cpu:in" in names
    assert "host:b:disk:in" in names


def test_disk_limited_transfer():
    """A slow source disk caps an otherwise fast path (Figure 8 regime)."""
    slow_disk = HostSpec(nic_rate=mbps(100), bus_rate=None,
                         disk=DiskArray(DiskSpec(rate=10 * 2**20)))
    env, topo, net, a, b = two_hosts(spec_a=slow_disk)
    flow = net.transfer(a.store_node, b.store_node, 100 * 2**20)
    net.reallocate()
    assert flow.rate == pytest.approx(10 * 2**20)
    env.run()


def test_memory_transfer_skips_disk():
    slow_disk = HostSpec(nic_rate=mbps(100), bus_rate=None,
                         disk=DiskArray(DiskSpec(rate=10 * 2**20)))
    env, topo, net, a, b = two_hosts(spec_a=slow_disk, spec_b=slow_disk)
    flow = net.transfer(a.app_node, b.app_node, 100 * 2**20)
    net.reallocate()
    assert flow.rate == pytest.approx(mbps(100))
    env.run()


def test_cpu_limits_gigabit_host_without_coalescing():
    spec = HostSpec(nic_rate=gbps(1), bus_rate=None,
                    cpu=CpuModel(coalesce=1),
                    disk=DiskArray(DiskSpec(rate=100 * 2**20), count=4))
    env, topo, net, a, b = two_hosts(spec_a=spec, spec_b=spec)
    flow = net.transfer(a.app_node, b.app_node, 100 * 2**20)
    net.reallocate()
    assert flow.rate == pytest.approx(spec.cpu.throughput_cap)
    assert flow.rate < mbps(500)
    env.run()


def test_set_coalescing_updates_live_links():
    spec = HostSpec(nic_rate=gbps(1), bus_rate=None,
                    cpu=CpuModel(coalesce=1))
    env, topo, net, a, b = two_hosts(spec_a=spec)
    before = a.links["cpu:out"].capacity
    a.set_coalescing(8)
    after = a.links["cpu:out"].capacity
    assert after > 2 * before
    assert a.links["cpu:out"].nominal_capacity == after


def test_two_flows_share_host_disk():
    env, topo, net, a, b = two_hosts()
    disk_rate = a.spec.disk.rate
    f1 = net.transfer(a.store_node, b.store_node, disk_rate * 10)
    f2 = net.transfer(a.store_node, b.store_node, disk_rate * 10)
    net.reallocate()
    # Both flows read a's single disk array: it is the shared bottleneck.
    assert f1.rate + f2.rate == pytest.approx(min(disk_rate,
                                                  a.spec.cpu.throughput_cap,
                                                  gbps(2.5)))
    env.run()


def test_cpu_utilization_reporting():
    env, topo, net, a, b = two_hosts()
    assert a.cpu_utilization(0) == 0.0
    cap = a.spec.cpu.throughput_cap
    assert a.cpu_utilization(cap) == pytest.approx(1.0)
    assert 0.4 < a.cpu_utilization(cap / 2) < 0.6
