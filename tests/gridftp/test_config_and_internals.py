"""Unit coverage for GridFTP config, block planning, channel cache,
buffer negotiation, and HRM-backed serving."""

import pytest

from repro.gridftp import DataChannelCache, GridFtpConfig, GridFtpError
from repro.gridftp.client import _make_blocks
from repro.gridftp.protocol import FtpReply
from repro.net import MB, TcpParams, mbps
from repro.sim import Environment

from tests.gridftp.conftest import Grid


# -- GridFtpConfig ------------------------------------------------------------

def test_config_validation():
    with pytest.raises(ValueError):
        GridFtpConfig(parallelism=0)
    with pytest.raises(ValueError):
        GridFtpConfig(buffer_bytes=0)
    with pytest.raises(ValueError):
        GridFtpConfig(retry_limit=-1)
    with pytest.raises(ValueError):
        GridFtpConfig(stall_timeout=0)
    with pytest.raises(ValueError):
        GridFtpConfig(progress_poll=0)
    with pytest.raises(ValueError):
        GridFtpConfig(loss_rate=-0.1)


def test_ftp_reply_classification():
    assert FtpReply(150).is_preliminary
    assert FtpReply(226).is_success
    assert FtpReply(426).is_transient_error
    assert FtpReply(550).is_permanent_error
    err = GridFtpError(FtpReply(425, "cannot open"))
    assert err.transient
    assert "425 cannot open" in str(err)
    assert not GridFtpError(FtpReply(550, "gone")).transient


# -- block planning ---------------------------------------------------------------

def test_make_blocks_sums_exactly():
    for nbytes in (1.0, 100.0, 10 * MB, 2**31 + 17.0):
        for parallelism in (1, 3, 8):
            blocks = _make_blocks(nbytes, parallelism)
            assert sum(length for _, length in blocks) \
                == pytest.approx(nbytes)
            assert all(length > 0 for _, length in blocks)
            # Offsets tile [0, nbytes) contiguously, in order.
            cursor = 0.0
            for offset, length in blocks:
                assert offset == pytest.approx(cursor)
                cursor += length


def test_make_blocks_min_size_respected():
    blocks = _make_blocks(300 * 1024.0, parallelism=8)
    # 300 KB cannot produce 32 blocks of >= 256 KB: collapses to 1.
    assert len(blocks) == 1


def test_make_blocks_more_blocks_than_channels():
    blocks = _make_blocks(64 * MB, parallelism=4)
    assert len(blocks) == 16  # 4x channels


def test_make_blocks_zero():
    assert _make_blocks(0.0, 4) == []


# -- channel cache -----------------------------------------------------------------

class FakeConn:
    def __init__(self, src="a", dst="b"):
        self.src, self.dst = src, dst
        self.open = True
        self.transfers = 0

    def close(self):
        self.open = False


def test_channel_cache_roundtrip():
    env = Environment()
    cache = DataChannelCache(env, idle_ttl=60.0)
    conn = FakeConn()
    cache.release(conn)
    assert cache.idle_count("a", "b") == 1
    got = cache.acquire("a", "b")
    assert got is conn
    assert cache.reuses == 1
    assert cache.acquire("a", "b") is None


def test_channel_cache_ignores_closed_and_wrong_pair():
    env = Environment()
    cache = DataChannelCache(env)
    dead = FakeConn()
    dead.close()
    cache.release(dead)  # dropped silently
    assert cache.acquire("a", "b") is None
    cache.release(FakeConn("x", "y"))
    assert cache.acquire("a", "b") is None
    assert cache.acquire("x", "y") is not None


def test_channel_cache_ttl_and_drain():
    env = Environment()
    cache = DataChannelCache(env, idle_ttl=10.0)
    cache.release(FakeConn())

    def later(env):
        yield env.timeout(20.0)

    p = env.process(later(env))
    env.run()
    assert cache.acquire("a", "b") is None
    assert cache.expirations == 1
    c1, c2 = FakeConn(), FakeConn()
    cache.release(c1)
    cache.release(c2)
    assert cache.drain() == 2
    assert not c1.open and not c2.open


def test_channel_cache_idle_ttl_boundary():
    """TTL is strict: alive at exactly idle_ttl, expired just past it,
    and a stale channel is closed at acquire time — never handed out."""
    env = Environment()
    cache = DataChannelCache(env, idle_ttl=10.0)
    keeper = FakeConn()
    cache.release(keeper)

    def clock(env):
        yield env.timeout(10.0)   # exactly the TTL: still reusable

    env.process(clock(env))
    env.run()
    assert cache.acquire("a", "b") is keeper and keeper.open
    cache.release(keeper)

    def clock2(env):
        yield env.timeout(10.0 + 1e-6)  # just past: expired

    env.process(clock2(env))
    env.run()
    assert cache.acquire("a", "b") is None
    assert not keeper.open            # torn down, not leaked
    assert cache.expirations == 1
    assert cache.reuses == 1          # the expiry did not count as reuse


def test_channel_cache_drain_reports_stale_channels():
    """A channel idling past its TTL still counts in drain(): expiry is
    lazy (checked at acquire), so teardown must sweep it too."""
    env = Environment()
    cache = DataChannelCache(env, idle_ttl=5.0)
    stale, fresh = FakeConn(), FakeConn("x", "y")
    cache.release(stale)

    def clock(env):
        yield env.timeout(60.0)

    env.process(clock(env))
    env.run()
    cache.release(fresh)
    assert cache.drain() == 2
    assert not stale.open and not fresh.open
    assert cache.idle_count("a", "b") == 0
    assert cache.idle_count("x", "y") == 0


# -- buffer negotiation ------------------------------------------------------------

def test_negotiate_buffer_explicit_wins():
    grid = Grid()
    cfg = GridFtpConfig(buffer_bytes=123456.0)
    assert grid.client.negotiate_buffer("srv", "cli", cfg) == 123456.0


def test_negotiate_buffer_auto_uses_bdp():
    grid = Grid(wan=mbps(622), latency=0.008)
    cfg = GridFtpConfig(buffer_bytes=None)
    buf = grid.client.negotiate_buffer(
        grid.server_host.store_node, grid.client_host.store_node, cfg)
    # BDP of the bottleneck (~client cpu/nic) at RTT ~16ms, at least 64 KB.
    assert buf >= 64 * 1024
    rtt = grid.topo.rtt(grid.server_host.store_node,
                        grid.client_host.store_node)
    bottleneck = grid.topo.bottleneck_capacity(
        grid.server_host.store_node, grid.client_host.store_node)
    assert buf == pytest.approx(max(bottleneck * rtt, 64 * 1024))


# -- serving tape-backed files over GridFTP ----------------------------------------

def test_server_serves_from_hrm_transparently():
    """'The motivation for GridFTP is to provide a uniform interface to
    various storage systems' — a RETR against a tape-resident file
    stages then serves, same client code path."""
    from repro.storage import (FileObject, FileSystem,
                               HierarchicalResourceManager,
                               MassStorageSystem)
    grid = Grid()
    mss = MassStorageSystem(grid.env, cache_capacity=10 * 2**30, drives=1)
    grid.server.hrm = HierarchicalResourceManager(
        grid.env, mss, grid.server_fs)
    mss.archive(FileObject("cold.nc", 50 * MB), tape="T1", position=0.2)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        assert (yield from session.exists("cold.nc"))
        assert (yield from session.size("cold.nc")) == 50 * MB
        t0 = grid.env.now
        stats = yield from session.get("cold.nc", grid.client_fs,
                                       grid.client_host)
        return stats, grid.env.now - t0

    stats, elapsed = grid.run_process(main())
    assert stats.transferred_bytes == pytest.approx(50 * MB)
    assert grid.client_fs.exists("cold.nc")
    # Staging cost dominates (mount + seek + read at 14 MB/s).
    assert elapsed > 40.0
    assert mss.stage_count == 1


def test_server_store_overwrite_false_rejected():
    from repro.storage import FileExistsError_
    grid = Grid()
    grid.server.store("x.nc", 100)
    with pytest.raises(FileExistsError_):
        grid.server.store("x.nc", 100, overwrite=False)
    # Default overwrites.
    grid.server.store("x.nc", 200)
    assert grid.server_fs.stat("x.nc").size == 200


def test_put_missing_source_raises():
    from repro.storage import FileNotFoundError_
    grid = Grid()

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        with pytest.raises(FileNotFoundError_):
            yield from session.put("ghost.nc", grid.client_fs,
                                   grid.client_host)

    grid.run_process(main())


def test_transfer_stats_repr_and_mean_rate():
    from repro.gridftp import TransferStats
    s = TransferStats(path="x", requested_bytes=100.0,
                      transferred_bytes=100.0, started_at=1.0,
                      finished_at=3.0)
    assert s.duration == 2.0
    assert s.mean_rate == 50.0
    assert "x" in repr(s)
    instant = TransferStats(path="y", requested_bytes=0.0)
    assert instant.mean_rate == 0.0
