"""Tests for GridFTP sessions, gets, puts, partial and plugin retrieval."""

import pytest

from repro.gridftp import GridFtpConfig, GridFtpError, TransferHandle
from repro.net import MB, mbps, to_mbps

GB = 2 ** 30


def test_connect_authenticates(grid):
    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        return session.subjects

    client_subj, server_subj = grid.run_process(main())
    assert client_subj == "/CN=climate-user"
    assert server_subj == "/CN=gridftp/srv.lbl.gov"
    assert grid.gsi.handshakes == 1


def test_connect_unknown_server(grid):
    def main():
        with pytest.raises(GridFtpError, match="unknown server"):
            yield from grid.client.connect(grid.client_host, "ghost.gov")
        yield grid.env.timeout(0)

    grid.run_process(main())


def test_feat_lists_extensions(grid):
    grid.server.register_plugin("subset", lambda f, a: (f.size, f.content))

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        return (yield from session.feat())

    feats = grid.run_process(main())
    assert "GSI" in feats
    assert "SPAS" in feats
    assert "64BIT" in feats
    assert "ERET:subset" in feats


def test_size_and_missing_file(grid):
    grid.server_fs.create("data.nc", 123456)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        size = yield from session.size("data.nc")
        with pytest.raises(GridFtpError, match="no such file"):
            yield from session.size("ghost.nc")
        return size

    assert grid.run_process(main()) == 123456


def test_get_transfers_file(grid):
    grid.server_fs.create("data.nc", 100 * MB)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        stats = yield from session.get("data.nc", grid.client_fs,
                                       grid.client_host)
        return stats

    stats = grid.run_process(main())
    assert stats.transferred_bytes == pytest.approx(100 * MB)
    assert grid.client_fs.exists("data.nc")
    assert grid.client_fs.stat("data.nc").size == pytest.approx(100 * MB)
    assert stats.mean_rate > mbps(50)
    assert grid.server.bytes_served == pytest.approx(100 * MB)


def test_get_preserves_content(grid):
    payload = bytes(range(256)) * 10
    grid.server_fs.create("small.bin", len(payload), content=payload)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        yield from session.get("small.bin", grid.client_fs,
                               grid.client_host)

    grid.run_process(main())
    assert grid.client_fs.stat("small.bin").content == payload


def test_partial_retrieval(grid):
    payload = bytes(range(100))
    grid.server_fs.create("part.bin", 100, content=payload)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        stats = yield from session.get("part.bin", grid.client_fs,
                                       grid.client_host,
                                       dest_name="part.mid",
                                       offset=10, length=20)
        return stats

    stats = grid.run_process(main())
    assert stats.transferred_bytes == 20
    assert grid.client_fs.stat("part.mid").content == payload[10:30]


def test_partial_validation(grid):
    grid.server_fs.create("p.bin", 100)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        with pytest.raises(GridFtpError, match="beyond size"):
            yield from session.get("p.bin", grid.client_fs,
                                   grid.client_host, offset=200)
        with pytest.raises(GridFtpError, match="negative"):
            yield from session.get("p.bin", grid.client_fs,
                                   grid.client_host, offset=-5)

    grid.run_process(main())


def test_eret_plugin_reduces_bytes(grid):
    """Server-side processing: ship the derived product, not the file."""
    payload = b"x" * 1000
    grid.server_fs.create("big.nc", 1000, content=payload)
    grid.server.register_plugin(
        "subset", lambda f, args: (args["n"], f.content[:args["n"]]))

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        stats = yield from session.get("big.nc", grid.client_fs,
                                       grid.client_host,
                                       dest_name="sub.nc",
                                       eret="subset", eret_args={"n": 100})
        return stats

    stats = grid.run_process(main())
    assert stats.transferred_bytes == 100
    assert grid.client_fs.stat("sub.nc").size == 100


def test_unknown_eret_plugin(grid):
    grid.server_fs.create("f.nc", 100)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        with pytest.raises(GridFtpError, match="no ERET plugin"):
            yield from session.get("f.nc", grid.client_fs,
                                   grid.client_host, eret="ghost")

    grid.run_process(main())


def test_parallel_streams_split_work(grid):
    from repro.net import aggregate_series
    grid.server_fs.create("data.nc", 200 * MB)

    def main():
        cfg = GridFtpConfig(parallelism=4, buffer_bytes=MB)
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        stats = yield from session.get("data.nc", grid.client_fs,
                                       grid.client_host, record=True,
                                       config=cfg)
        return stats

    stats = grid.run_process(main())
    assert stats.streams == 4
    assert stats.transferred_bytes == pytest.approx(200 * MB)
    agg = aggregate_series(stats.series)
    assert agg.total_bytes == pytest.approx(200 * MB, rel=1e-6)


def test_window_limited_single_vs_parallel(grid):
    """With small buffers on a long path, N streams ≈ N× one stream —
    the paper's core reason for parallel transfers."""
    grid.server_fs.create("a.nc", 64 * MB)
    grid.server_fs.create("b.nc", 64 * MB)
    durations = {}

    def run(path, parallelism):
        cfg = GridFtpConfig(parallelism=parallelism, buffer_bytes=256 * 1024)
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        t0 = grid.env.now
        yield from session.get(path, grid.client_fs, grid.client_host,
                               config=cfg)
        durations[parallelism] = grid.env.now - t0

    grid.run_process(run("a.nc", 1))
    grid.run_process(run("b.nc", 4))
    assert durations[4] < durations[1] / 2.5


def test_put_uploads(grid):
    grid.client_fs.create("up.nc", 50 * MB, )

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        stats = yield from session.put("up.nc", grid.client_fs,
                                       grid.client_host)
        return stats

    stats = grid.run_process(main())
    assert stats.transferred_bytes == pytest.approx(50 * MB)
    assert grid.server_fs.exists("up.nc")


def test_insecure_grid_skips_auth(insecure_grid):
    g = insecure_grid
    g.server_fs.create("f.nc", MB)

    def main():
        session = yield from g.client.connect(g.client_host, "srv.lbl.gov")
        assert session.subjects == ("anonymous", "srv.lbl.gov")
        yield from session.get("f.nc", g.client_fs, g.client_host)

    g.run_process(main())
    assert g.client_fs.exists("f.nc")


def test_handle_reports_progress(grid):
    grid.server_fs.create("data.nc", 200 * MB)
    handle = TransferHandle(grid.env, "data.nc", 0.0)
    samples = []

    def monitor():
        while not handle.done.triggered:
            samples.append(handle.bytes_done())
            yield grid.env.timeout(0.5)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        grid.env.process(monitor())
        yield from session.get("data.nc", grid.client_fs, grid.client_host,
                               handle=handle)

    grid.run_process(main())
    assert samples[0] < 1 * MB
    assert any(0 < s < 200 * MB for s in samples)
    assert handle.bytes_done() == pytest.approx(200 * MB)
    assert handle.fraction == pytest.approx(1.0)


def test_handle_abort_cancels_transfer(grid):
    grid.server_fs.create("data.nc", 500 * MB)
    handle = TransferHandle(grid.env, "data.nc", 0.0)

    def aborter():
        yield grid.env.timeout(2.0)
        handle.abort("replica switch")

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        grid.env.process(aborter())
        with pytest.raises(GridFtpError):
            yield from session.get("data.nc", grid.client_fs,
                                   grid.client_host, handle=handle)
        return grid.env.now

    t = grid.run_process(main())
    assert t < 20.0  # did not run to completion


def test_third_party_copy(grid):
    """Client at ANL moves data between two other servers."""
    from repro.gridftp import GridFtpServer
    from repro.hosts import Host
    from repro.net import gbps
    from repro.storage import FileSystem

    third_host = Host(grid.topo, "third", site="ncar")
    third_host.uplink("r-ncar")
    grid.topo.duplex_link("r-ncar", "r-anl", mbps(622), 0.012,
                          name="wan-ncar")
    grid.ns.register("third.ncar.edu", "third")
    third_fs = FileSystem(grid.env, "third-fs")
    third_server = GridFtpServer(grid.env, third_host, third_fs,
                                 gsi=grid.gsi,
                                 credential_chain=grid.server.credential_chain,
                                 hostname="third.ncar.edu")
    grid.registry["third.ncar.edu"] = third_server
    grid.server_fs.create("data.nc", 20 * MB)

    def main():
        stats = yield from grid.client.third_party_copy(
            grid.client_host, "srv.lbl.gov", "third.ncar.edu", "data.nc")
        return stats

    stats = grid.run_process(main())
    assert stats.transferred_bytes == pytest.approx(20 * MB)
    assert third_fs.exists("data.nc")
    assert not grid.client_fs.exists("data.nc")  # data bypassed the client
