"""Tests for the standard server-side processing plug-ins."""

import numpy as np
import pytest

from repro.data import ClimateModelRun, GridSpec, decode
from repro.gridftp.plugins import (
    PluginError,
    checksum_plugin,
    extract_variable_plugin,
    install_standard_plugins,
    subset_plugin,
    time_mean_plugin,
)
from repro.storage import FileObject


def sdbf_file(name="year.nc"):
    run = ClimateModelRun(grid=GridSpec(16, 32, 12), seed=2)
    blob = run.encode_year(1995)
    return FileObject(name, len(blob), content=blob), run


def test_subset_plugin_reduces_and_preserves_values():
    file, run = sdbf_file()
    size, blob, decoded = subset_plugin(file, {"variable": "tas",
                                               "lat": (-30.0, 30.0),
                                               "time": (0.0, 0.2)})
    assert size == len(blob)
    assert size < file.size / 4
    assert decoded == file.size  # flat layout decodes the whole file
    sub = decode(blob)
    full = run.generate_year(1995)
    lat = full.coords["lat"]
    keep = (lat >= -30) & (lat <= 30)
    np.testing.assert_allclose(sub["tas"].data[0],
                               full["tas"].data[0][keep], rtol=1e-12)


def test_subset_plugin_validation():
    file, _ = sdbf_file()
    with pytest.raises(PluginError, match="variable"):
        subset_plugin(file, {})
    with pytest.raises(PluginError):
        subset_plugin(file, {"variable": "ghost"})
    with pytest.raises(PluginError, match="no content"):
        subset_plugin(FileObject("x", 100), {"variable": "tas"})
    with pytest.raises(PluginError, match="not an SDBF"):
        subset_plugin(FileObject("x", 4, content=b"junk"),
                      {"variable": "tas"})


def test_extract_variable_plugin():
    file, _ = sdbf_file()
    size, blob, _ = extract_variable_plugin(file, {"variable": "pr"})
    ds = decode(blob)
    assert set(ds.variables) == {"pr"}
    assert size < file.size / 2  # dropped 2 of 3 variables
    with pytest.raises(PluginError):
        extract_variable_plugin(file, {"variable": "nope"})
    with pytest.raises(PluginError):
        extract_variable_plugin(file, {})


def test_time_mean_plugin_reduces_by_months():
    file, run = sdbf_file()
    size, blob, _ = time_mean_plugin(file, {"variable": "tas"})
    ds = decode(blob)
    assert ds["tas"].dims == ("lat", "lon")
    full = run.generate_year(1995)
    np.testing.assert_allclose(ds["tas"].data,
                               full["tas"].data.mean(axis=0), rtol=1e-12)
    # ~12x reduction on the variable payload.
    assert size < file.size / 6


def test_time_mean_plugin_requires_time_axis():
    from repro.data import Dataset, Variable, encode
    ds = Dataset("flat")
    ds.add_coord("lat", [0.0, 1.0])
    ds.add_variable(Variable("v", ("lat",), np.zeros(2)))
    blob = encode(ds)
    f = FileObject("flat.nc", len(blob), content=blob)
    with pytest.raises(PluginError, match="no time axis"):
        time_mean_plugin(f, {"variable": "v"})
    with pytest.raises(PluginError):
        time_mean_plugin(f, {})


def test_checksum_plugin_tiny_and_stable():
    file, _ = sdbf_file()
    size, blob, decoded = checksum_plugin(file, {})
    assert size == 16  # hex blake2s, same digest the catalogs record
    assert decoded == file.size  # whole-file scan, like CKSM
    size2, blob2, _ = checksum_plugin(file, {})
    assert blob == blob2
    # Size-only files get a name/size digest.
    s3, b3, _ = checksum_plugin(FileObject("big", 1e9), {})
    assert s3 == 16


def test_install_standard_plugins(grid):
    install_standard_plugins(grid.server)
    feats = grid.server.features
    for name in ("subset", "extract", "time_mean", "checksum"):
        assert f"ERET:{name}" in feats


def test_plugins_over_the_wire(grid):
    """End-to-end: the subset ships, the original stays put."""
    install_standard_plugins(grid.server)
    file, _ = sdbf_file()
    grid.server_fs.store(file)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        stats = yield from session.get(
            "year.nc", grid.client_fs, grid.client_host,
            dest_name="tropics.nc", eret="subset",
            eret_args={"variable": "tas", "lat": (-15.0, 15.0)})
        return stats

    stats = grid.run_process(main())
    assert stats.transferred_bytes < file.size / 4
    sub = decode(grid.client_fs.stat("tropics.nc").content)
    assert float(np.abs(sub.coords["lat"]).max()) <= 15.0
