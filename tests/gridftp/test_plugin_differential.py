"""Differential property: chunked SDBF serves bit-identical products.

For any dataset shape, chunk geometry, and coordinate selection, the
subset / extract / time_mean plug-ins must produce byte-identical
derived blobs from the flat and chunked encodings of the same data —
the chunked fast path is an optimization, never a semantics change.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data import encode
from repro.data.variables import Dataset, Variable
from repro.gridftp.plugins import (
    PluginError,
    extract_variable_plugin,
    subset_plugin,
    time_mean_plugin,
)
from repro.storage import FileObject


@st.composite
def dataset_and_chunks(draw):
    nt = draw(st.integers(1, 6))
    nlat = draw(st.integers(1, 9))
    nlon = draw(st.integers(1, 9))
    rng = np.random.default_rng(draw(st.integers(0, 2**16)))
    ds = Dataset("prop", {"case": "differential"})
    ds.add_coord("time", np.arange(nt, dtype=float))
    ds.add_coord("lat", np.linspace(-80.0, 80.0, nlat))
    ds.add_coord("lon", np.linspace(0.0, 350.0, nlon))
    ds.add_variable(Variable("tas", ("time", "lat", "lon"),
                             rng.normal(280.0, 10.0, (nt, nlat, nlon)),
                             {"units": "K"}))
    chunks = {"time": draw(st.integers(1, nt + 2)),
              "lat": draw(st.integers(1, nlat + 2)),
              "lon": draw(st.integers(1, nlon + 2))}
    lat = ds.coords["lat"]
    lo = draw(st.integers(0, nlat - 1))
    hi = draw(st.integers(lo, nlat - 1))
    ranges = {"lat": (float(lat[lo]), float(lat[hi]))}
    return ds, chunks, ranges


@settings(max_examples=60, deadline=None)
@given(dataset_and_chunks())
def test_chunked_equals_flat_bit_identical(case):
    ds, chunks, ranges = case
    flat_blob = encode(ds)
    chunked_blob = encode(ds, chunks=chunks)
    flat = FileObject("f.nc", len(flat_blob), content=flat_blob)
    chunked = FileObject("c.nc", len(chunked_blob), content=chunked_blob)

    for plugin, args in [
        (subset_plugin, {"variable": "tas", **ranges}),
        (extract_variable_plugin, {"variable": "tas"}),
        (time_mean_plugin, {"variable": "tas"}),
    ]:
        try:
            size_f, blob_f, dec_f = plugin(flat, dict(args))
        except PluginError as exc_f:
            # Whatever the flat path rejects, the chunked path must
            # reject the same way.
            try:
                plugin(chunked, dict(args))
            except PluginError:
                continue
            raise AssertionError(
                f"flat raised {exc_f!r} but chunked succeeded")
        size_c, blob_c, dec_c = plugin(chunked, dict(args))
        assert blob_f == blob_c, plugin.__name__
        assert size_f == size_c == len(blob_f)
        # The fast path never decodes more than the whole file.
        assert 0 <= dec_c <= len(chunked_blob)
        assert dec_f == len(flat_blob)
