"""Shared fixtures: a two-site grid with GridFTP endpoints."""

import pytest

from repro.gsi import (
    CertificateAuthority,
    GsiContext,
    Identity,
    SecurityPolicy,
    TrustAnchors,
)
from repro.gridftp import GridFtpClient, GridFtpConfig, GridFtpServer
from repro.hosts import CpuModel, DiskArray, DiskSpec, Host, HostSpec
from repro.net import (
    FluidNetwork,
    NameService,
    Topology,
    Transport,
    gbps,
    mbps,
)
from repro.sim import Environment
from repro.storage import FileSystem


class Grid:
    """A tiny two-site testbed for GridFTP tests."""

    def __init__(self, seed=9, wan=mbps(622), latency=0.008,
                 server_spec=None, client_spec=None, secure=True):
        self.env = Environment(seed=seed)
        self.topo = Topology("test-grid")
        default = HostSpec(nic_rate=gbps(1), bus_rate=None,
                           cpu=CpuModel(coalesce=8),
                           disk=DiskArray(DiskSpec(rate=60 * 2**20),
                                          count=4))
        self.server_host = Host(self.topo, "srv", site="lbnl",
                                spec=server_spec or default)
        self.client_host = Host(self.topo, "cli", site="anl",
                                spec=client_spec or default)
        self.server_host.uplink("r-lbnl")
        self.client_host.uplink("r-anl")
        self.topo.duplex_link("r-lbnl", "r-anl", wan, latency, name="wan")
        self.net = FluidNetwork(self.env, self.topo)
        self.ns = NameService(self.env)
        self.ns.register("srv.lbl.gov", "srv")
        self.transport = Transport(self.env, self.net, self.ns)
        self.server_fs = FileSystem(self.env, "srv-fs")
        self.client_fs = FileSystem(self.env, "cli-fs")
        if secure:
            ca = CertificateAuthority("DOE CA")
            self.trust = TrustAnchors()
            self.trust.trust_ca(ca)
            self.gsi = GsiContext(self.trust,
                                  SecurityPolicy(crypto_time=0.02))
            server_id = Identity("/CN=gridftp/srv.lbl.gov", ca, self.trust)
            user = Identity("/CN=climate-user", ca, self.trust)
            server_chain = server_id.chain
            user_chain = user.make_proxy(0.0)
        else:
            self.gsi = None
            server_chain = ()
            user_chain = ()
        self.server = GridFtpServer(self.env, self.server_host,
                                    self.server_fs, gsi=self.gsi,
                                    credential_chain=server_chain,
                                    hostname="srv.lbl.gov")
        self.registry = {"srv.lbl.gov": self.server}
        self.client = GridFtpClient(self.env, self.transport, self.registry,
                                    credential_chain=user_chain,
                                    config=GridFtpConfig())

    def run_process(self, gen):
        """Drive a client generator to completion; return its value."""
        p = self.env.process(gen)
        self.env.run(until=p)
        return p.value


@pytest.fixture
def grid():
    return Grid()


@pytest.fixture
def insecure_grid():
    return Grid(secure=False)
