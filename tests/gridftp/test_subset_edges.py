"""Directed edge cases for subsetting through the ERET plugin path.

Every malformed or degenerate selection must surface as a clean
:class:`PluginError` — never a numpy traceback — on both SDBF layouts.
"""

import numpy as np
import pytest

from repro.data import ClimateModelRun, GridSpec, decode
from repro.gridftp.plugins import PluginError, subset_plugin
from repro.storage import FileObject


def files_both_layouts(seed=5):
    run = ClimateModelRun(grid=GridSpec(16, 32, 12), seed=seed)
    flat = run.encode_year(1995)
    chunked = run.encode_year(1995, chunks={"time": 2, "lat": 8,
                                            "lon": 16})
    return [FileObject("flat.nc", len(flat), content=flat),
            FileObject("chunked.nc", len(chunked), content=chunked)], run


@pytest.mark.parametrize("layout", [0, 1], ids=["flat", "chunked"])
def test_empty_intersection_is_clean(layout):
    files, _ = files_both_layouts()
    with pytest.raises(PluginError, match="selects nothing"):
        subset_plugin(files[layout], {"variable": "tas",
                                      "lat": (200.0, 300.0)})


@pytest.mark.parametrize("layout", [0, 1], ids=["flat", "chunked"])
def test_reversed_bounds_are_clean(layout):
    files, _ = files_both_layouts()
    with pytest.raises(PluginError, match="empty range"):
        subset_plugin(files[layout], {"variable": "tas",
                                      "lat": (30.0, -30.0)})


@pytest.mark.parametrize("layout", [0, 1], ids=["flat", "chunked"])
def test_unknown_dim_is_clean(layout):
    files, _ = files_both_layouts()
    with pytest.raises(PluginError):
        subset_plugin(files[layout], {"variable": "tas",
                                      "depth": (0.0, 10.0)})


@pytest.mark.parametrize("layout", [0, 1], ids=["flat", "chunked"])
def test_single_point_range(layout):
    files, run = files_both_layouts()
    full = run.generate_year(1995)
    lat0 = float(full.coords["lat"][3])
    _, blob, _ = subset_plugin(files[layout],
                               {"variable": "tas", "lat": (lat0, lat0)})
    sub = decode(blob)
    assert sub["tas"].shape[1] == 1
    np.testing.assert_array_equal(sub["tas"].data[:, 0, :],
                                  full["tas"].data[:, 3, :])


@pytest.mark.parametrize("layout", [0, 1], ids=["flat", "chunked"])
def test_full_dim_range_equals_no_range(layout):
    files, _ = files_both_layouts()
    _, everything, _ = subset_plugin(files[layout], {"variable": "tas"})
    _, explicit, _ = subset_plugin(files[layout],
                                   {"variable": "tas",
                                    "lat": (-1000.0, 1000.0)})
    a, b = decode(everything), decode(explicit)
    np.testing.assert_array_equal(a["tas"].data, b["tas"].data)


def test_edge_errors_end_to_end_keep_pins_balanced(grid):
    """A failing plugin after a stage must not leak the stage pin."""
    from repro.gridftp.plugins import install_standard_plugins
    from repro.storage import (
        HierarchicalResourceManager,
        MassStorageSystem,
    )
    install_standard_plugins(grid.server)
    files, _ = files_both_layouts()
    mss = MassStorageSystem(grid.env, cache_capacity=2**30, drives=1)
    grid.server.hrm = HierarchicalResourceManager(grid.env, mss,
                                                  grid.server_fs)
    mss.archive(files[1], tape="T1", position=0.0)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        try:
            yield from session.get(
                "chunked.nc", grid.client_fs, grid.client_host,
                eret="subset",
                eret_args={"variable": "tas", "lat": (30.0, -30.0)})
        except PluginError:
            return "clean"
        return "no error"

    assert grid.run_process(main()) == "clean"
    grid.env.run(until=grid.env.now + 300.0)  # let the stage finish
    assert not mss.cache.is_pinned("chunked.nc")
