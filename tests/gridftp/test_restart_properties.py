"""Property-based verification of GridFTP restart-marker machinery.

The extended-mode Range Marker ("111 Range Marker 0-29,40-89") is the
only record a restarting client has of what already landed, so the
bookkeeping must be exact: canonical form after arbitrary insertions,
lossless wire round-trips, and a ``missing()`` complement that tiles
the file with no gaps or overlaps.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gridftp import RestartMarkers

# Two flavours of ranges: an integer grid (adjacency and exact overlap
# are common, exercising the coalescing paths) and arbitrary floats.
grid_range = st.tuples(st.integers(0, 30), st.integers(1, 10)).map(
    lambda t: (float(t[0]), float(t[0] + t[1])))
float_range = st.tuples(
    st.floats(0.0, 1e9, allow_nan=False, allow_infinity=False),
    st.floats(1e-6, 1e9, allow_nan=False, allow_infinity=False),
).map(lambda t: (t[0], t[0] + t[1]))
ranges_strategy = st.lists(st.one_of(grid_range, float_range),
                           min_size=0, max_size=20)


def union_measure(ranges):
    """Measure of the union, computed independently of the class."""
    total = 0.0
    cursor = -1.0
    for lo, hi in sorted(ranges):
        lo = max(lo, cursor)
        if hi > lo:
            total += hi - lo
            cursor = hi
        cursor = max(cursor, hi)
    return total


@given(ranges_strategy)
@settings(max_examples=200, deadline=None)
def test_property_canonical_invariant(ranges):
    """After any insertion sequence: sorted, non-empty, disjoint, and
    never merely adjacent (touching ranges must have coalesced)."""
    m = RestartMarkers()
    for lo, hi in ranges:
        m.add(lo, hi)
    out = m.ranges
    for lo, hi in out:
        assert hi > lo
    for (_, b), (a2, _) in zip(out, out[1:]):
        assert a2 > b  # strictly separated: no overlap, no touching


@given(ranges_strategy)
@settings(max_examples=200, deadline=None)
def test_property_serialize_round_trip(ranges):
    """parse(serialize(m)) reproduces m exactly — the wire format is
    lossless for any float ranges, including scientific notation."""
    m = RestartMarkers(ranges)
    assert RestartMarkers.parse(m.serialize()) == m


@given(ranges_strategy)
@settings(max_examples=200, deadline=None)
def test_property_insertion_order_irrelevant(ranges):
    """Markers are a set: reversed insertion builds the same canon."""
    forward = RestartMarkers(ranges)
    backward = RestartMarkers(reversed(ranges))
    assert forward == backward


@given(ranges_strategy, ranges_strategy)
@settings(max_examples=200, deadline=None)
def test_property_merge_commutes(ranges_a, ranges_b):
    """Stripes reporting separately merge to one canon, either way."""
    a, b = RestartMarkers(ranges_a), RestartMarkers(ranges_b)
    assert a.merge(b) == b.merge(a)
    assert a.merge(b) == RestartMarkers(list(ranges_a) + list(ranges_b))


@given(ranges_strategy)
@settings(max_examples=200, deadline=None)
def test_property_bytes_done_is_union_measure(ranges):
    """bytes_done equals the measure of the union of inserted ranges
    (coalescing must not create or destroy bytes)."""
    m = RestartMarkers(ranges)
    assert m.bytes_done == pytest.approx(union_measure(ranges),
                                         rel=1e-9, abs=1e-9)


@given(ranges_strategy, st.floats(1.0, 2e9))
@settings(max_examples=200, deadline=None)
def test_property_missing_complements_exactly(ranges, total):
    """missing(total) tiles [0, total) together with the clipped
    markers: disjoint, ordered, measures summing to total."""
    m = RestartMarkers(ranges)
    gaps = m.missing(total)
    for lo, hi in gaps:
        assert 0.0 <= lo < hi <= total
    clipped = [(max(0.0, lo), min(hi, total)) for lo, hi in m.ranges
               if lo < total]
    pieces = sorted(gaps + [r for r in clipped if r[1] > r[0]])
    cursor = 0.0
    for lo, hi in pieces:
        assert lo == pytest.approx(cursor, rel=1e-9, abs=1e-9)
        cursor = hi
    assert cursor == pytest.approx(total, rel=1e-9)
    assert m.covers(total) == (not gaps)


# -- directed examples (the paper's own marker text) --------------------------

def test_range_marker_paper_example():
    m = RestartMarkers([(0.0, 29.0), (40.0, 89.0)])
    assert m.serialize() == "0-29,40-89"
    assert m.bytes_done == 78.0
    assert m.contiguous_prefix() == 29.0
    assert m.missing(100.0) == [(29.0, 40.0), (89.0, 100.0)]


def test_adjacent_ranges_coalesce():
    m = RestartMarkers()
    m.add(0.0, 10.0)
    m.add(20.0, 30.0)
    m.add(10.0, 20.0)  # bridges both neighbours exactly
    assert m.ranges == ((0.0, 30.0),)
    assert len(m) == 1


def test_inverted_range_rejected_and_empty_ignored():
    m = RestartMarkers()
    with pytest.raises(ValueError):
        m.add(5.0, 1.0)
    m.add(3.0, 3.0)
    assert m.ranges == ()
    assert m.contiguous_prefix() == 0.0


def test_parse_rejects_garbage():
    with pytest.raises(ValueError):
        RestartMarkers.parse("12")
    with pytest.raises(ValueError):
        RestartMarkers.parse("a-b")
    assert RestartMarkers.parse("") == RestartMarkers()


def test_transfer_records_covering_markers():
    """The block pump's markers cover exactly the transferred file."""
    from repro.net import MB
    from tests.gridftp.conftest import Grid
    grid = Grid()
    grid.server.store("marked.nc", 32 * MB)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        return (yield from session.get("marked.nc", grid.client_fs,
                                       grid.client_host))

    stats = grid.run_process(main())
    markers = stats.restart_markers
    assert markers is not None
    assert markers.covers(32 * MB)
    assert markers.bytes_done == pytest.approx(32 * MB)
    assert RestartMarkers.parse(markers.serialize()) == markers
