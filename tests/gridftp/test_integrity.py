"""Integrity tests: CKSM, taint marking, and restart + verify."""

import pytest

from repro.data.digest import content_digest, file_digest, marks_of
from repro.gridftp import GridFtpConfig, GridFtpError, GridFtpServer
from repro.net import MB, FaultInjector, FaultSchedule
from repro.storage import (
    FileObject,
    HierarchicalResourceManager,
    MassStorageSystem,
)

from tests.gridftp.conftest import Grid


# -- CKSM command -----------------------------------------------------------

def test_cksm_returns_catalog_grade_digest():
    grid = Grid()
    grid.server_fs.create("data.nc", 10 * MB)
    cfg = GridFtpConfig()

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        digest = yield from session.cksm("data.nc")
        return digest

    digest = grid.run_process(main())
    assert digest == content_digest("data.nc", 10 * MB)
    assert digest == file_digest(grid.server_fs.stat("data.nc"))
    assert grid.server.checksums_served == 1


def test_cksm_costs_a_disk_scan():
    """CKSM is not free: the server charges size / checksum_rate."""
    grid = Grid()
    size = 150 * MB
    grid.server_fs.create("big.nc", size)
    cfg = GridFtpConfig()

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        t0 = grid.env.now
        yield from session.cksm("big.nc")
        return grid.env.now - t0

    elapsed = grid.run_process(main())
    assert elapsed >= size / grid.server.checksum_rate


def test_cksm_missing_file_raises():
    grid = Grid()
    cfg = GridFtpConfig()

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        with pytest.raises(GridFtpError):
            yield from session.cksm("ghost.nc")
        return True

    assert grid.run_process(main())


# -- taint propagation ------------------------------------------------------

def test_clean_transfer_delivers_pristine_digest():
    grid = Grid()
    grid.server_fs.create("data.nc", 20 * MB)
    cfg = GridFtpConfig(parallelism=2)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        stats = yield from session.get("data.nc", grid.client_fs,
                                       grid.client_host, config=cfg)
        return stats

    stats = grid.run_process(main())
    delivered = grid.client_fs.stat("data.nc")
    assert stats.tainted_blocks == 0
    assert marks_of(delivered) == ()
    assert file_digest(delivered) == content_digest("data.nc", 20 * MB)


def test_corrupt_window_taints_delivered_file():
    """Blocks pumped through a corrupting link change the digest."""
    grid = Grid()
    grid.server_fs.create("data.nc", 100 * MB)
    # Window covers the whole transfer on the server->client direction.
    sched = FaultSchedule().corrupt_transfer("wan:fwd", 0.5, 60.0)
    FaultInjector(grid.env, grid.net, grid.ns).install(sched)
    cfg = GridFtpConfig(parallelism=2, buffer_bytes=MB)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        stats = yield from session.get("data.nc", grid.client_fs,
                                       grid.client_host, config=cfg)
        digest = yield from session.cksm("data.nc")
        return stats, digest

    stats, source_digest = grid.run_process(main())
    delivered = grid.client_fs.stat("data.nc")
    assert stats.tainted_blocks >= 1
    assert marks_of(delivered)
    # End-to-end detection: arrival digest disagrees with the source's.
    assert file_digest(delivered) != source_digest
    assert source_digest == content_digest("data.nc", 100 * MB)


def test_at_rest_corruption_changes_cksm():
    grid = Grid()
    grid.server_fs.create("data.nc", 10 * MB)
    clean = content_digest("data.nc", 10 * MB)
    grid.server.corrupt_file("data.nc", tag="at-rest@test")
    cfg = GridFtpConfig()

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        return (yield from session.cksm("data.nc"))

    assert grid.run_process(main()) != clean


# -- restart markers compose with verification (satellite) ------------------

def test_restart_resume_then_digest_verifies():
    """Crash mid-file, resume from restart markers, digest still clean.

    The resumed transfer must reassemble a file whose digest matches the
    publish-time digest — restart markers must not corrupt, duplicate,
    or drop block ranges.
    """
    grid = Grid()
    size = 200 * MB
    grid.server_fs.create("data.nc", size)
    sched = FaultSchedule().link_outage("wan:fwd", start=1.0, duration=10.0)
    FaultInjector(grid.env, grid.net, grid.ns).install(sched)
    cfg = GridFtpConfig(parallelism=1, buffer_bytes=MB, stall_timeout=4.0,
                        retry_backoff=1.0)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        stats = yield from session.get("data.nc", grid.client_fs,
                                       grid.client_host, config=cfg)
        digest = yield from session.cksm("data.nc")
        return stats, digest

    stats, source_digest = grid.run_process(main())
    assert stats.restarts >= 1                      # it really crashed
    delivered = grid.client_fs.stat("data.nc")
    assert delivered.size == pytest.approx(size)
    assert file_digest(delivered) == source_digest  # ... and verifies


def test_restart_through_corrupt_window_still_detected():
    """An outage + corruption combo must never launder a bad file."""
    grid = Grid()
    grid.server_fs.create("data.nc", 100 * MB)
    sched = (FaultSchedule()
             .link_outage("wan:fwd", start=0.5, duration=8.0)
             .corrupt_transfer("wan:fwd", 8.5, 30.0))
    FaultInjector(grid.env, grid.net, grid.ns).install(sched)
    cfg = GridFtpConfig(parallelism=1, buffer_bytes=MB, stall_timeout=4.0,
                        retry_backoff=1.0)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        stats = yield from session.get("data.nc", grid.client_fs,
                                       grid.client_host, config=cfg)
        return stats

    stats = grid.run_process(main())
    delivered = grid.client_fs.stat("data.nc")
    if stats.tainted_blocks:
        assert file_digest(delivered) != content_digest("data.nc",
                                                        100 * MB)
    else:  # corruption window may close before the resumed blocks
        assert file_digest(delivered) == content_digest("data.nc",
                                                        100 * MB)


# -- HRM-backed CKSM holds the cache pin (satellite) ------------------------

def test_cksm_on_hrm_backed_server_pins_for_whole_scan():
    """The checksum scan reads the staged copy — eviction mid-scan would
    be a use-after-free. The pin must be held until the scan finishes."""
    grid = Grid(secure=False)
    env = grid.env
    mss = MassStorageSystem(env, cache_capacity=500 * MB, drives=1)
    hrm = HierarchicalResourceManager(env, mss, grid.server_fs)
    srv = GridFtpServer(env, grid.server_host, grid.server_fs,
                        gsi=None, credential_chain=(),
                        hostname="hrm.lbl.gov", hrm=hrm,
                        checksum_rate=10 * MB)
    size = 140 * MB
    mss.archive(FileObject("f.nc", size), tape="T1", position=0.0)

    p = env.process(srv.cksm("f.nc"))
    samples = []

    def sampler():
        while not p.triggered:
            samples.append((env.now, mss.cache.is_pinned("f.nc")))
            yield env.timeout(0.25)

    env.process(sampler())
    env.run(until=p)
    digest = p.value
    finished = env.now
    scan = size / srv.checksum_rate  # 14 s at 10 MB/s

    assert digest == content_digest("f.nc", size)
    assert not mss.cache.is_pinned("f.nc")  # balanced release at the end
    in_scan = [pinned for t, pinned in samples
               if finished - scan + 0.5 <= t < finished]
    assert in_scan and all(in_scan)  # pinned for the entire scan window
