"""ERET staging cut-through: range staging for tape-resident subsets.

A subset of a chunked tape-resident file only needs the byte prefix
covering its touched chunks. With ``eret_range_staging`` the server
gates the plugin on that prefix watermark instead of the full stage, so
time-to-first-byte scales with bytes *touched*, not bytes *stored*.
"""

import pytest

from repro.data import ClimateModelRun, GridSpec
from repro.gridftp.plugins import install_standard_plugins
from repro.storage import (
    FileObject,
    HierarchicalResourceManager,
    MassStorageSystem,
    TapeSpec,
)

from .conftest import Grid

KB = 2**10

# Slow drive, quick mount: the sequential read dominates, which is the
# regime where staging only the needed prefix pays off.
SLOW_TAPE = TapeSpec(read_rate=32 * KB, mount_time=1.0,
                     max_seek_time=1.0, rewind_time=1.0)


def tape_grid(chunks, seed=7):
    grid = Grid()
    mss = MassStorageSystem(grid.env, cache_capacity=2**30, drives=1,
                            tape_spec=SLOW_TAPE)
    grid.server.hrm = HierarchicalResourceManager(grid.env, mss,
                                                  grid.server_fs)
    run = ClimateModelRun(grid=GridSpec(64, 128, 12), seed=seed)
    blob = run.encode_year(1995, chunks=chunks)
    mss.archive(FileObject("year.nc", len(blob), content=blob),
                tape="T1", position=0.0)
    install_standard_plugins(grid.server)
    return grid, mss, run


def early_subset(grid, run, dest="sub.nc"):
    """Fetch the first two months of tas: touched chunks live at the
    front of the file, so the needed prefix is a small fraction."""
    time = run.generate_year(1995).coords["time"]
    args = {"variable": "tas",
            "time": (float(time[0]), float(time[1]))}

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        t0 = grid.env.now
        stats = yield from session.get("year.nc", grid.client_fs,
                                       grid.client_host, dest_name=dest,
                                       eret="subset", eret_args=args)
        return stats, grid.env.now - t0

    return grid.run_process(main())


def test_range_staging_beats_full_stage_by_2x():
    grid_on, mss_on, run = tape_grid(chunks={"time": 1, "lat": 64,
                                             "lon": 128})
    stats_on, elapsed_on = early_subset(grid_on, run)
    assert grid_on.server.eret_range_staged == 1

    grid_off, mss_off, run = tape_grid(chunks={"time": 1, "lat": 64,
                                               "lon": 128})
    grid_off.server.eret_range_staging = False
    stats_off, elapsed_off = early_subset(grid_off, run)
    assert grid_off.server.eret_range_staged == 0

    # Identical product either way...
    assert (grid_on.client_fs.stat("sub.nc").content
            == grid_off.client_fs.stat("sub.nc").content)
    # ...but the range-staged request returns much sooner than one that
    # waited out the whole slow tape read.
    assert elapsed_off >= 2.0 * elapsed_on

    # The whole file still stages in the background and every pin is
    # balanced once it lands.
    for grid, mss in [(grid_on, mss_on), (grid_off, mss_off)]:
        grid.env.run(until=grid.env.now + 600.0)
        assert not mss.cache.is_pinned("year.nc")


def test_flat_layout_waits_for_full_stage():
    """A flat file has no chunk index, so the planner cannot compute a
    prefix and the request degrades to the pre-existing full stage."""
    grid, mss, run = tape_grid(chunks=None)
    stats, elapsed = early_subset(grid, run)
    assert grid.server.eret_range_staged == 0
    assert stats.eret_decoded_bytes > 0
    grid.env.run(until=grid.env.now + 600.0)
    assert not mss.cache.is_pinned("year.nc")


def test_range_staging_skipped_for_disk_files(grid):
    """Disk-resident files never touch the HRM; no range staging."""
    install_standard_plugins(grid.server)
    run = ClimateModelRun(grid=GridSpec(16, 32, 12), seed=7)
    blob = run.encode_year(1995, chunks={"time": 1, "lat": 8, "lon": 16})
    grid.server_fs.store(FileObject("year.nc", len(blob), content=blob))
    time = run.generate_year(1995).coords["time"]

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        return (yield from session.get(
            "year.nc", grid.client_fs, grid.client_host,
            eret="subset",
            eret_args={"variable": "tas",
                       "time": (float(time[0]), float(time[1]))}))

    stats = grid.run_process(main())
    assert grid.server.eret_range_staged == 0
    assert stats.eret_decoded_bytes > 0


def test_eret_range_staging_flag_validated():
    from repro.sim import Environment
    from repro.hosts import Host, HostSpec, CpuModel, DiskArray, DiskSpec
    from repro.net import Topology, gbps
    from repro.storage import FileSystem
    from repro.gridftp import GridFtpServer

    env = Environment(seed=1)
    topo = Topology("t")
    spec = HostSpec(nic_rate=gbps(1), bus_rate=None,
                    cpu=CpuModel(coalesce=8),
                    disk=DiskArray(DiskSpec(rate=60 * 2**20), count=4))
    host = Host(topo, "h", site="s", spec=spec)
    fs = FileSystem(env, "fs")
    srv = GridFtpServer(env, host, fs, eret_range_staging=False)
    assert srv.eret_range_staging is False
    with pytest.raises(ValueError):
        GridFtpServer(env, host, fs, eret_rate=0.0)
    with pytest.raises(ValueError):
        GridFtpServer(env, host, fs, derived_cache_bytes=-1.0)
