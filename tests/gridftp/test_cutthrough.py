"""Stage/transfer cut-through: RETR against a still-staging tape file.

With ``GridFtpConfig.stage_watermark`` set, a whole-file RETR of a
tape-resident file starts moving bytes once the staged prefix crosses
the watermark instead of waiting for the full stage, with the transfer
rate capped at the tape drive rate so the stream can never overtake the
staged watermark.
"""

import pytest

from repro.gridftp import GridFtpConfig
from repro.storage import (
    FileObject,
    HierarchicalResourceManager,
    MassStorageSystem,
)

from .conftest import Grid

MB = 2**20


def tape_grid(cold_size=140 * MB, position=0.0, **grid_kw):
    """A Grid whose server fronts a single-drive MSS with one cold file."""
    grid = Grid(**grid_kw)
    mss = MassStorageSystem(grid.env, cache_capacity=10 * 2**30, drives=1)
    grid.server.hrm = HierarchicalResourceManager(
        grid.env, mss, grid.server_fs)
    mss.archive(FileObject("cold.nc", cold_size), tape="T1",
                position=position)
    return grid, mss


def fetch(grid, config=None, path="cold.nc"):
    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        t0 = grid.env.now
        stats = yield from session.get(path, grid.client_fs,
                                       grid.client_host, config=config)
        return stats, t0, grid.env.now

    return grid.run_process(main())


def test_cutthrough_starts_before_stage_completes():
    grid, mss = tape_grid()
    cfg = GridFtpConfig(stage_watermark=0.25)
    stats, t0, t_end = fetch(grid, cfg)
    assert grid.server.cutthrough_served == 1
    assert stats.transferred_bytes == pytest.approx(140 * MB)
    assert grid.client_fs.exists("cold.nc")
    # The stage alone takes mount 40 + 140 MB / 14 MBps = 50 s; the data
    # channel must open well before that.
    stage_done = grid.server.hrm.completed[0].completed_at
    assert t0 < stage_done
    assert t_end > stage_done        # capped stream cannot finish earlier
    # The stage pin was taken and balanced exactly.
    assert not mss.cache.is_pinned("cold.nc")


def test_cutthrough_lowers_ttfb_not_makespan():
    """Against the sequential baseline, cut-through moves the first byte
    far earlier and never finishes later."""
    from repro.gridftp import TransferHandle

    def run(watermark):
        grid, _mss = tape_grid()
        cfg = GridFtpConfig(stage_watermark=watermark)
        handle = TransferHandle(grid.env, "cold.nc", 0.0)

        def main():
            session = yield from grid.client.connect(grid.client_host,
                                                     "srv.lbl.gov")
            t0 = grid.env.now
            yield from session.get("cold.nc", grid.client_fs,
                                   grid.client_host, handle=handle,
                                   config=cfg)
            return t0, handle.first_byte_at, grid.env.now

        t0, first_byte, t_end = grid.run_process(main())
        return first_byte - t0, t_end - t0

    seq_ttfb, seq_elapsed = run(None)
    cut_ttfb, cut_elapsed = run(0.125)
    # Sequential: first byte after the full stage (mount 40 + 10 s
    # stream). Cut-through: after the 12.5% watermark (~41.3 s).
    assert seq_ttfb > 49.0
    assert cut_ttfb < 43.0
    # And the makespan is no worse: the overlap only helps.
    assert cut_elapsed <= seq_elapsed


def test_cutthrough_never_outruns_staged_watermark():
    """Sampled during the transfer, delivered bytes never exceed the
    staged prefix (rate cap at the tape rate + watermark head start)."""
    from repro.gridftp import TransferHandle
    grid, mss = tape_grid()
    cfg = GridFtpConfig(stage_watermark=0.25)
    handle = TransferHandle(grid.env, "cold.nc", 0.0)
    samples = []

    def sampler():
        req = None
        while not grid.client_fs.exists("cold.nc"):
            req = req or grid.server.hrm._inflight.get("cold.nc")
            if req is not None and req.progress is not None:
                samples.append((handle.bytes_done(),
                                req.progress.staged_bytes()))
            yield grid.env.timeout(1.0)

    grid.env.process(sampler())

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        yield from session.get("cold.nc", grid.client_fs,
                               grid.client_host, handle=handle,
                               config=cfg)

    grid.run_process(main())
    assert handle.cutthrough
    assert samples, "sampler never saw the in-flight stage"
    for delivered, staged in samples:
        assert delivered <= staged + 1e-6


def test_cutthrough_skipped_when_already_staged():
    grid, mss = tape_grid()
    cfg = GridFtpConfig(stage_watermark=0.25)
    fetch(grid, cfg)
    grid.client_fs.delete("cold.nc")
    stats, t0, t_end = fetch(grid, cfg)   # warm: served from disk
    assert grid.server.cutthrough_served == 1   # only the first RETR
    assert stats.transferred_bytes == pytest.approx(140 * MB)


def test_cutthrough_disabled_for_partial_and_eret_requests():
    """Offset/length and ERET requests need the materialized file; the
    watermark only applies to whole-file RETRs."""
    grid, mss = tape_grid()
    cfg = GridFtpConfig(stage_watermark=0.25)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        stats = yield from session.get("cold.nc", grid.client_fs,
                                       grid.client_host, offset=10 * MB,
                                       config=cfg)
        return stats

    stats = grid.run_process(main())
    assert grid.server.cutthrough_served == 0
    assert stats.transferred_bytes == pytest.approx(130 * MB)
    assert not mss.cache.is_pinned("cold.nc")


def test_stage_watermark_validation():
    with pytest.raises(ValueError):
        GridFtpConfig(stage_watermark=0.0)
    with pytest.raises(ValueError):
        GridFtpConfig(stage_watermark=1.5)
    GridFtpConfig(stage_watermark=1.0)     # boundary is legal


def test_plain_transfer_pin_balance_unchanged():
    """Without a watermark the stage pin is still taken per RETR and
    balanced by finish_retrieve."""
    grid, mss = tape_grid()
    fetch(grid, GridFtpConfig())
    assert grid.server.cutthrough_served == 0
    assert not mss.cache.is_pinned("cold.nc")
    grid.client_fs.delete("cold.nc")
    fetch(grid, GridFtpConfig())           # warm re-read, same balance
    assert not mss.cache.is_pinned("cold.nc")
