"""The per-server derived-product cache: unit + server integration."""

import pytest

from repro.data import ClimateModelRun, GridSpec
from repro.gridftp import DerivedProductCache
from repro.gridftp.plugins import install_standard_plugins
from repro.storage import (
    FileObject,
    HierarchicalResourceManager,
    MassStorageSystem,
)


# -- unit ---------------------------------------------------------------------
def test_lru_eviction_respects_byte_budget():
    cache = DerivedProductCache(100.0)
    cache.put("a", 40.0, b"a")
    cache.put("b", 40.0, b"b")
    cache.put("c", 40.0, b"c")       # evicts a (LRU)
    assert cache.get("a") is None
    assert cache.get("b").content == b"b"
    assert cache.bytes_used == 80.0
    assert cache.evictions == 1
    # b is now most-recent; adding d evicts c, not b.
    cache.put("d", 40.0, b"d")
    assert cache.get("c") is None
    assert cache.get("b") is not None


def test_oversize_product_not_admitted():
    cache = DerivedProductCache(100.0)
    cache.put("big", 500.0, b"x")
    assert len(cache) == 0 and cache.bytes_used == 0.0


def test_replacing_a_key_updates_bytes():
    cache = DerivedProductCache(100.0)
    cache.put("k", 60.0, b"v1")
    cache.put("k", 30.0, b"v2")
    assert cache.bytes_used == 30.0 and len(cache) == 1
    assert cache.get("k").content == b"v2"


def test_make_key_is_canonical():
    k1 = DerivedProductCache.make_key("d", "subset",
                                      {"variable": "tas",
                                       "lat": (1.0, 2.0)})
    k2 = DerivedProductCache.make_key("d", "subset",
                                      {"lat": (1.0, 2.0),
                                       "variable": "tas"})
    assert k1 == k2
    assert k1 != DerivedProductCache.make_key("d2", "subset",
                                              {"variable": "tas",
                                               "lat": (1.0, 2.0)})


def test_zero_capacity_rejected():
    with pytest.raises(ValueError):
        DerivedProductCache(0.0)


# -- server integration --------------------------------------------------------
def chunked_file(name="year.nc"):
    run = ClimateModelRun(grid=GridSpec(16, 32, 12), seed=4)
    blob = run.encode_year(1995, chunks={"time": 1, "lat": 8, "lon": 16})
    return FileObject(name, len(blob), content=blob)


ARGS = {"variable": "tas", "lat": (-30.0, 30.0)}


def eret_get(grid, dest="out.nc", path="year.nc"):
    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov")
        return (yield from session.get(path, grid.client_fs,
                                       grid.client_host, dest_name=dest,
                                       eret="subset", eret_args=ARGS))
    return grid.run_process(main())


def test_warm_repeat_decodes_zero_bytes(grid):
    install_standard_plugins(grid.server)
    grid.server_fs.store(chunked_file())
    cold = eret_get(grid, "a.nc")
    assert not cold.eret_cache_hit and cold.eret_decoded_bytes > 0
    decoded_after_cold = grid.server.eret_decoded_bytes
    warm = eret_get(grid, "b.nc")
    assert warm.eret_cache_hit
    assert warm.eret_decoded_bytes == 0.0
    assert grid.server.eret_decoded_bytes == decoded_after_cold
    assert grid.server.derived_cache.hits == 1
    # Identical product either way.
    assert (grid.client_fs.stat("a.nc").content
            == grid.client_fs.stat("b.nc").content)


def test_cache_disabled_recomputes():
    from .conftest import Grid
    grid = Grid()
    grid.server.derived_cache = None
    install_standard_plugins(grid.server)
    grid.server_fs.store(chunked_file())
    eret_get(grid, "a.nc")
    again = eret_get(grid, "b.nc")
    assert not again.eret_cache_hit and again.eret_decoded_bytes > 0


def test_digest_key_rejects_corrupted_source(grid):
    """A corrupted replica must never serve the stale cached product."""
    install_standard_plugins(grid.server)
    grid.server_fs.store(chunked_file())
    eret_get(grid, "a.nc")
    grid.server.corrupt_file("year.nc")
    redo = eret_get(grid, "b.nc")
    assert not redo.eret_cache_hit          # digest changed -> miss
    assert grid.server.derived_cache.misses >= 2


def test_cache_hit_takes_no_stage_pin(grid):
    """A hit is answered without touching the HRM at all."""
    install_standard_plugins(grid.server)
    mss = MassStorageSystem(grid.env, cache_capacity=2**30, drives=1)
    grid.server.hrm = HierarchicalResourceManager(grid.env, mss,
                                                  grid.server_fs)
    mss.archive(chunked_file(), tape="T1", position=0.0)
    cold = eret_get(grid, "a.nc")
    assert not cold.eret_cache_hit
    grid.env.run(until=grid.env.now + 300.0)
    assert not mss.cache.is_pinned("year.nc")
    stages_before = mss.stage_count
    warm = eret_get(grid, "b.nc")
    assert warm.eret_cache_hit
    assert mss.stage_count == stages_before
    assert not mss.cache.is_pinned("year.nc")
