"""Tests for striped transfers, channel caching, and fault restart."""

import pytest

from repro.gridftp import (
    GridFtpConfig,
    GridFtpError,
    GridFtpServer,
    ReliabilityPolicy,
    RestartLog,
    StripedServer,
)
from repro.hosts import CpuModel, DiskArray, DiskSpec, Host, HostSpec
from repro.net import (
    FaultInjector,
    FaultSchedule,
    aggregate_series,
    MB,
    gbps,
    mbps,
    to_mbps,
)
from repro.storage import FileSystem

from tests.gridftp.conftest import Grid


def make_striped(grid, n_backends=4, file_size=256 * MB):
    """Add n backend hosts at the server site, build a StripedServer."""
    spec = HostSpec(nic_rate=gbps(1), bus_rate=None,
                    cpu=CpuModel(coalesce=8),
                    disk=DiskArray(DiskSpec(rate=60 * 2**20), count=4))
    backends = []
    for i in range(n_backends):
        host = Host(grid.topo, f"stripe{i}", site="lbnl", spec=spec)
        host.uplink("r-lbnl")
        hostname = f"stripe{i}.lbl.gov"
        grid.ns.register(hostname, host.node)
        fs = FileSystem(grid.env, f"stripe{i}-fs")
        server = GridFtpServer(grid.env, host, fs, gsi=grid.gsi,
                               credential_chain=grid.server.credential_chain,
                               hostname=hostname)
        grid.registry[hostname] = server
        backends.append(server)
    striped = StripedServer("striped.lbl.gov", backends)
    striped.partition_file("big.dat", file_size)
    return striped


def test_striped_partitions_evenly():
    grid = Grid()
    striped = make_striped(grid, n_backends=4, file_size=100 * MB)
    layout = striped.layout("big.dat")
    assert len(layout) == 4
    assert sum(s for _, _, s in layout) == pytest.approx(100 * MB)
    assert striped.size("big.dat") == pytest.approx(100 * MB)
    for i, (idx, name, size) in enumerate(layout):
        assert idx == i
        assert striped.backends[i].fs.exists(name)


def test_striped_content_reassembled():
    grid = Grid()
    striped = make_striped(grid, n_backends=3, file_size=0)
    payload = bytes(range(90))
    striped.partition_file("c.bin", 90, content=payload)

    def main():
        return (yield from striped.striped_get(
            grid.client, grid.client_host, "c.bin", grid.client_fs))

    res = grid.run_process(main())
    assert res.total_bytes == 90
    assert grid.client_fs.stat("c.bin").content == payload


def test_striped_beats_single_server():
    """Striping across hosts lifts the per-host CPU/NIC ceiling."""
    # Single server (CPU-capped around 1 Gb/s per host, WAN at 2.5 Gb/s).
    single = Grid(wan=gbps(2.5))
    single.server_fs.create("big.dat", 512 * MB)

    def one():
        session = yield from single.client.connect(single.client_host,
                                                   "srv.lbl.gov")
        t0 = single.env.now
        yield from session.get("big.dat", single.client_fs,
                               single.client_host)
        return single.env.now - t0

    t_single = single.run_process(one())

    striped_grid = Grid(wan=gbps(2.5))
    # Beef up the client so the destination is not the bottleneck
    # (at SC'2000 the receive side was itself a striped 8-host cluster).
    striped_grid.client_host.spec.cpu = CpuModel(
        copy_cost_per_byte=1e-9, interrupt_cost=2e-6)
    striped_grid.client_host.set_coalescing(32)
    for l in ("nic:in", "uplink:in", "uplink:out", "disk:in"):
        striped_grid.client_host.links[l].restore(gbps(4))
        striped_grid.client_host.links[l].nominal_capacity = gbps(4)
    striped = make_striped(striped_grid, n_backends=4,
                           file_size=512 * MB)

    def many():
        t0 = striped_grid.env.now
        yield from striped.striped_get(striped_grid.client,
                                       striped_grid.client_host,
                                       "big.dat", striped_grid.client_fs)
        return striped_grid.env.now - t0

    t_striped = striped_grid.run_process(many())
    assert t_striped < t_single / 1.5


def test_striped_unknown_file():
    grid = Grid()
    striped = make_striped(grid)
    with pytest.raises(GridFtpError, match="not striped"):
        striped.layout("ghost.dat")


def test_striped_needs_backends():
    with pytest.raises(ValueError):
        StripedServer("empty", [])


# -- channel caching -----------------------------------------------------------

def run_back_to_back(grid, caching: bool, n=3, size=8 * MB):
    cfg = GridFtpConfig(parallelism=1, buffer_bytes=MB,
                        channel_caching=caching)
    for i in range(n):
        grid.server_fs.create(f"f{i}.nc", size)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        t0 = grid.env.now
        stats = []
        for i in range(n):
            s = yield from session.get(f"f{i}.nc", grid.client_fs,
                                       grid.client_host, config=cfg)
            stats.append(s)
        return grid.env.now - t0, stats

    return grid.run_process(main())


def test_channel_caching_speeds_repeated_transfers():
    t_cold, stats_cold = run_back_to_back(Grid(), caching=False)
    t_warm, stats_warm = run_back_to_back(Grid(), caching=True)
    assert t_warm < t_cold
    assert not any(s.channel_reused for s in stats_cold)
    assert any(s.channel_reused for s in stats_warm[1:])


def test_channel_cache_reuse_counter():
    grid = Grid()
    run_back_to_back(grid, caching=True, n=4)
    assert grid.client.channel_cache.reuses >= 3


def test_channel_cache_ttl_expires():
    grid = Grid()
    cfg = GridFtpConfig(channel_caching=True, buffer_bytes=MB)
    grid.client.channel_cache.idle_ttl = 10.0
    grid.server_fs.create("a.nc", MB)
    grid.server_fs.create("b.nc", MB)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        yield from session.get("a.nc", grid.client_fs, grid.client_host,
                               config=cfg)
        yield grid.env.timeout(60.0)  # longer than the ttl
        s = yield from session.get("b.nc", grid.client_fs, grid.client_host,
                                   config=cfg)
        return s

    stats = grid.run_process(main())
    assert not stats.channel_reused
    assert grid.client.channel_cache.expirations >= 1


# -- restart under faults ---------------------------------------------------------

def test_transfer_survives_wan_outage():
    grid = Grid()
    grid.server_fs.create("data.nc", 200 * MB)
    sched = FaultSchedule().link_outage("wan:fwd", start=2.0, duration=20.0,
                                        description="backbone problem")
    FaultInjector(grid.env, grid.net, grid.ns).install(sched)
    cfg = GridFtpConfig(parallelism=2, buffer_bytes=MB,
                        stall_timeout=5.0, retry_backoff=2.0)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        stats = yield from session.get("data.nc", grid.client_fs,
                                       grid.client_host, config=cfg)
        return stats

    stats = grid.run_process(main())
    assert stats.restarts >= 1
    assert grid.client_fs.stat("data.nc").size == pytest.approx(200 * MB)
    # Interrupted transfers "continued as soon as the network was restored".
    assert stats.finished_at > 22.0


def test_transfer_gives_up_after_retry_limit():
    grid = Grid()
    grid.server_fs.create("data.nc", 200 * MB)
    # Permanent outage.
    grid.topo.links["wan:fwd"].set_down()
    grid.net.reallocate()
    cfg = GridFtpConfig(stall_timeout=3.0, retry_limit=2, retry_backoff=1.0)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        with pytest.raises(GridFtpError) as err:
            yield from session.get("data.nc", grid.client_fs,
                                   grid.client_host, config=cfg)
        return err.value

    err = grid.run_process(main())
    assert err.transient  # 426: retry later is legitimate


def test_restart_resumes_not_resends():
    """Bytes delivered before the outage are not transferred again."""
    grid = Grid()
    size = 100 * MB
    grid.server_fs.create("data.nc", size)
    sched = FaultSchedule().link_outage("wan:fwd", start=3.0, duration=10.0)
    FaultInjector(grid.env, grid.net, grid.ns).install(sched)
    cfg = GridFtpConfig(parallelism=1, buffer_bytes=MB, stall_timeout=4.0,
                        retry_backoff=1.0)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        stats = yield from session.get("data.nc", grid.client_fs,
                                       grid.client_host, config=cfg,
                                       record=True)
        return stats

    stats = grid.run_process(main())
    # Total wire bytes equal the file size (restart markers, no resend).
    agg = aggregate_series(stats.series)
    assert agg.total_bytes == pytest.approx(size, rel=0.01)


# -- reliability policy / restart log ----------------------------------------------

def test_reliability_policy_fires_after_consecutive_lows():
    policy = ReliabilityPolicy(min_rate=mbps(10), grace_period=10.0,
                               consecutive_samples=3)
    assert not policy.observe(5.0, 0.0)          # in grace period
    assert not policy.observe(11.0, mbps(1))
    assert not policy.observe(12.0, mbps(1))
    assert policy.observe(13.0, mbps(1))         # third low sample
    assert not policy.observe(14.0, mbps(1))     # counter reset after firing


def test_reliability_policy_reset_on_good_sample():
    policy = ReliabilityPolicy(min_rate=mbps(10), grace_period=0.0,
                               consecutive_samples=2)
    assert not policy.observe(1.0, mbps(1))
    assert not policy.observe(2.0, mbps(50))  # recovery resets the count
    assert not policy.observe(3.0, mbps(1))
    assert policy.observe(4.0, mbps(1))


def test_reliability_policy_validation():
    with pytest.raises(ValueError):
        ReliabilityPolicy(min_rate=0)
    with pytest.raises(ValueError):
        ReliabilityPolicy(min_rate=1, consecutive_samples=0)


def test_restart_log():
    log = RestartLog("f.nc")
    assert log.resume_offset() == 0.0
    log.mark(10.0, 5 * MB, "stall")
    log.mark(30.0, 12 * MB, "link down")
    assert log.restarts == 2
    assert log.resume_offset() == 12 * MB


def test_put_survives_wan_outage():
    """Uploads are restartable too (the shared block pump)."""
    grid = Grid()
    grid.client_fs.create("up.dat", 150 * MB)
    sched = FaultSchedule().link_outage("wan:rev", start=2.0,
                                        duration=15.0,
                                        description="uplink outage")
    FaultInjector(grid.env, grid.net, grid.ns).install(sched)
    cfg = GridFtpConfig(parallelism=2, buffer_bytes=MB,
                        stall_timeout=5.0, retry_backoff=2.0)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        stats = yield from session.put("up.dat", grid.client_fs,
                                       grid.client_host, config=cfg)
        return stats

    stats = grid.run_process(main())
    assert stats.restarts >= 1
    assert grid.server_fs.stat("up.dat").size == pytest.approx(150 * MB)
    assert stats.finished_at > 17.0
