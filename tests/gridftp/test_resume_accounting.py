"""Regression: a reused TransferHandle must not double-count bytes.

Retrying a transfer on the same handle (the resume-after-failure
pattern) used to carry the failed attempt's ``_completed`` bytes and
in-flight taints forward, so schedulers saw phantom progress released
back to grants and clean copies arrived "tainted". ``begin_attempt``
resets per-attempt state on every get/put that reuses a handle.
"""

import pytest

from repro.data import ClimateModelRun, GridSpec
from repro.gridftp import GridFtpConfig, GridFtpError, TransferHandle
from repro.gridftp.plugins import install_standard_plugins
from repro.storage import FileObject

from .conftest import Grid

MB = 2**20

FAIL_FAST = GridFtpConfig(stall_timeout=3.0, retry_limit=1,
                          retry_backoff=1.0)


def outage(grid, at=2.0, links=("wan:fwd",), corrupt=False):
    """Open a corrupt window now, then hard-fail the WAN at ``at``."""
    for name in links:
        if corrupt:
            grid.topo.links[name].corrupt_hold()

    def faulter():
        yield grid.env.timeout(at)
        for name in links:
            grid.topo.links[name].set_down()
        grid.net.reallocate()

    grid.env.process(faulter())


def repair(grid, links=("wan:fwd",), corrupt=False):
    for name in links:
        if corrupt:
            grid.topo.links[name].release_corrupt()
        grid.topo.links[name].restore()
    grid.net.reallocate()


def test_reused_handle_does_not_double_count_or_carry_taints():
    grid = Grid()
    grid.server_fs.create("data.nc", 600 * MB)
    handle = TransferHandle(grid.env, "data.nc", 0.0)
    # One channel pumps blocks sequentially, so early blocks complete
    # inside the corrupt window (and get tainted) before the outage.
    cfg = GridFtpConfig(parallelism=1, stall_timeout=3.0, retry_limit=1,
                        retry_backoff=1.0)
    outage(grid, at=2.5, corrupt=True)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", cfg)
        with pytest.raises(GridFtpError):
            yield from session.get("data.nc", grid.client_fs,
                                   grid.client_host, handle=handle,
                                   config=cfg)
        partial = handle.bytes_done()
        stale_taints = len(handle.taints)
        repair(grid, corrupt=True)
        stats = yield from session.get("data.nc", grid.client_fs,
                                       grid.client_host, handle=handle,
                                       dest_name="retry.nc")
        return partial, stale_taints, stats

    partial, stale_taints, stats = grid.run_process(main())
    assert not handle.aborted               # failed, not user-aborted
    assert 0 < partial < 600 * MB           # the outage hit mid-flight
    assert stale_taints > 0                 # corrupt window really marked
    # Progress reflects THIS attempt only, not partial + full: the old
    # bug reported 200 MB + partial to anything polling the handle.
    assert handle.bytes_done() == pytest.approx(600 * MB)
    assert handle.fraction == pytest.approx(1.0)
    # The retry ran on a clean link, so the delivered copy must be
    # clean — stale taints no longer condemn it.
    assert handle.taints == []
    assert stats.tainted_blocks == 0
    assert stats.transferred_bytes == pytest.approx(600 * MB)


def test_reused_handle_eret_accounting():
    """Same invariant when the retry is a small ERET request: stale
    bytes from the failed whole-file attempt would dwarf the derived
    product and push fraction far past 1."""
    grid = Grid()
    install_standard_plugins(grid.server)
    run = ClimateModelRun(grid=GridSpec(16, 32, 12), seed=11)
    blob = run.encode_year(1995, chunks={"time": 1, "lat": 8, "lon": 16})
    grid.server_fs.store(FileObject("year.nc", len(blob), content=blob))
    grid.server_fs.create("big.nc", 600 * MB)
    handle = TransferHandle(grid.env, "big.nc", 0.0)
    outage(grid)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", FAIL_FAST)
        with pytest.raises(GridFtpError):
            yield from session.get("big.nc", grid.client_fs,
                                   grid.client_host, handle=handle,
                                   config=FAIL_FAST)
        partial = handle.bytes_done()
        repair(grid)
        stats = yield from session.get(
            "year.nc", grid.client_fs, grid.client_host, handle=handle,
            dest_name="sub.nc", eret="subset",
            eret_args={"variable": "tas", "lat": (-30.0, 30.0)})
        return partial, stats

    partial, stats = grid.run_process(main())
    assert partial > 0
    assert stats.transferred_bytes < partial   # product ≪ stale bytes
    assert handle.bytes_done() == pytest.approx(stats.transferred_bytes)
    assert handle.fraction == pytest.approx(1.0)


def test_reused_handle_on_put():
    """Uploads reset per-attempt state too."""
    grid = Grid()
    grid.client_fs.create("up.nc", 600 * MB)
    handle = TransferHandle(grid.env, "up.nc", 0.0)
    links = ("wan:fwd", "wan:rev")
    outage(grid, links=links)

    def main():
        session = yield from grid.client.connect(grid.client_host,
                                                 "srv.lbl.gov", FAIL_FAST)
        with pytest.raises(GridFtpError):
            yield from session.put("up.nc", grid.client_fs,
                                   grid.client_host, handle=handle,
                                   config=FAIL_FAST)
        partial = handle.bytes_done()
        repair(grid, links=links)
        yield from session.put("up.nc", grid.client_fs, grid.client_host,
                               handle=handle, dest_name="up2.nc")
        return partial

    partial = grid.run_process(main())
    assert partial > 0
    assert handle.bytes_done() == pytest.approx(600 * MB)
    assert handle.fraction == pytest.approx(1.0)
    assert grid.server_fs.stat("up2.nc").size == pytest.approx(600 * MB)
