"""Property-based invariants of the federated replica catalog.

Random publish/update/delete workloads are driven against a sharded
federation and an unsharded :class:`ReplicaCatalog` in lockstep, and
three invariants are checked:

- **read equivalence**: after replication quiesces, every federated
  read (collections, locations, timed ``find_replicas`` fan-out)
  returns exactly what the unsharded union baseline returns, with
  results deterministically ordered;
- **routing is total and stable**: every collection name maps to a
  home shard and a duplicate-free preference list, independently
  constructed routers agree, and removing a site only moves the
  collections it homed;
- **replication converges**: under arbitrary interleavings of writes
  and partial sync rounds, a final flush makes every preference
  shard's collection subtree byte-identical to its home's, and the
  version-gated conflict resolution makes replay a no-op.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldap.directory import Scope
from repro.replica.catalog import ReplicaCatalog
from repro.replica.federation import FederatedReplicaCatalog, ShardRouter
from repro.sim import Environment

SITES = ["anl", "ncar", "isi"]
COLLS = [f"pcmdi.model{i}.run" for i in range(4)]
LOCS = ["alpha", "beta"]
FILES = [f"file{i:02d}.nc" for i in range(6)]

# One declarative workload op; validity is resolved against a model at
# apply time so every generated sequence is usable.
op_strategy = st.tuples(
    st.sampled_from(["create", "reg_loc", "reg_lf", "add_file",
                     "remove_file", "del_loc"]),
    st.integers(0, len(COLLS) - 1),
    st.integers(0, len(LOCS) - 1),
    st.integers(0, len(FILES) - 1))
ops_strategy = st.lists(op_strategy, min_size=1, max_size=30)


class Model:
    """Tracks which ops are valid against the catalogs' current state."""

    def __init__(self):
        self.colls = {}          # coll -> loc -> [files]
        self.lfs = set()         # (coll, file) with a logical-file entry

    def admit(self, op):
        """The concrete (kind, coll, loc, lf) if valid, else None."""
        kind, ci, li, fi = op
        coll, loc, lf = COLLS[ci], LOCS[li], FILES[fi]
        locs = self.colls.get(coll)
        if kind == "create":
            if locs is not None:
                return None
            self.colls[coll] = {}
        elif kind == "reg_loc":
            if locs is None or loc in locs:
                return None
            locs[loc] = [lf]
        elif kind == "reg_lf":
            if locs is None or (coll, lf) in self.lfs:
                return None
            self.lfs.add((coll, lf))
        elif kind == "add_file":
            if locs is None or loc not in locs or lf in locs[loc]:
                return None
            locs[loc].append(lf)
        elif kind == "remove_file":
            if locs is None or loc not in locs or lf not in locs[loc]:
                return None
            locs[loc].remove(lf)
        elif kind == "del_loc":
            if locs is None or loc not in locs:
                return None
            del locs[loc]
        return kind, coll, loc, lf


def perform(catalog, kind, coll, loc, lf):
    """Apply one admitted op to a catalog (federated or plain)."""
    if kind == "create":
        catalog.create_collection(coll, description="prop")
    elif kind == "reg_loc":
        catalog.register_location(coll, loc, "gsiftp",
                                  f"{loc}.example.org", 2811, "/data",
                                  [lf])
    elif kind == "reg_lf":
        catalog.register_logical_file(coll, lf, 4096.0)
    elif kind == "add_file":
        catalog.add_file_to_location(coll, loc, lf)
    elif kind == "remove_file":
        catalog.remove_file_from_location(coll, loc, lf)
    elif kind == "del_loc":
        catalog.delete_location(coll, loc)


def loc_key(info):
    return (info.name, info.protocol, info.hostname, info.port,
            info.path, tuple(sorted(info.files)))


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy)
def test_federated_reads_match_unsharded_baseline(ops):
    env = Environment(seed=11)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=5.0)
    base = ReplicaCatalog(env, name="esg")
    model = Model()
    for op in ops:
        admitted = model.admit(op)
        if admitted is None:
            continue
        perform(fed, *admitted)
        perform(base, *admitted)
    fed.sync_now()

    def snap(catalog):
        return sorted((c.name, c.description, c.file_count,
                       c.location_count) for c in catalog.collections())

    assert snap(fed) == snap(base)
    for coll in sorted(model.colls):
        assert sorted(map(loc_key, fed.locations(coll))) == \
            sorted(map(loc_key, base.locations(coll)))
        for lf in FILES:
            assert fed.logical_file_size(coll, lf) == \
                base.logical_file_size(coll, lf)

    def driver():
        for coll in sorted(model.colls):
            for lf in FILES:
                got = yield from fed.find_replicas(coll, lf)
                want = yield from base.find_replicas(coll, lf)
                # federated answers are DN-sorted; normalise the
                # baseline the same way before comparing.
                assert [loc_key(l) for l in got] == \
                    sorted(loc_key(l) for l in want)
                # and the federated order itself is deterministic
                assert [l.name for l in got] == \
                    sorted(l.name for l in got)

    proc = env.process(driver())
    env.run(until=proc)


site_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=6),
    min_size=1, max_size=8, unique=True)
coll_names = st.lists(
    st.text(alphabet="abcdefghijklmnop0123456789.", min_size=1,
            max_size=16),
    min_size=1, max_size=16, unique=True)


@settings(max_examples=200, deadline=None)
@given(sites=site_names, colls=coll_names, replicas=st.integers(1, 4))
def test_router_total_and_stable(sites, colls, replicas):
    router = ShardRouter(sites, replicas=replicas)
    twin = ShardRouter(sites, replicas=replicas)
    want_len = min(replicas, len(sites))
    for coll in colls:
        prefs = router.preference(coll)
        # total: every name routes, to real sites, without duplicates
        assert len(prefs) == want_len
        assert len(set(prefs)) == len(prefs)
        assert all(site in sites for site in prefs)
        assert prefs[0] == router.home(coll)
        # deterministic: an independently built router agrees
        assert twin.preference(coll) == prefs
    if len(sites) > 1:
        # stable: removing one site only moves the collections it homed
        removed = sites[len(sites) // 2]
        shrunk = ShardRouter([s for s in sites if s != removed],
                             replicas=replicas)
        for coll in colls:
            if router.home(coll) != removed:
                assert shrunk.home(coll) == router.home(coll)
    # pinning overrides the home but keeps the list duplicate-free
    router.pin(colls[0], sites[-1])
    pinned = router.preference(colls[0])
    assert pinned[0] == sites[-1]
    assert len(pinned) == want_len
    assert len(set(pinned)) == len(pinned)


def subtree(site, coll):
    """A site's collection subtree as comparable, ordered data."""
    dn = site.catalog.root.child("lc", coll)
    if not site.directory.exists(dn):
        return None
    return sorted(
        (str(entry.dn),
         tuple(sorted((attr, tuple(sorted(values)))
                      for attr, values in entry.attributes.items())))
        for entry in site.directory.search(dn, Scope.SUBTREE))


@settings(max_examples=200, deadline=None)
@given(ops=ops_strategy,
       flushes=st.sets(st.integers(0, 29), max_size=5))
def test_replication_converges_after_quiescence(ops, flushes):
    env = Environment(seed=5)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=5.0)
    model = Model()
    for index, op in enumerate(ops):
        admitted = model.admit(op)
        if admitted is not None:
            perform(fed, *admitted)
        if index in flushes:
            fed.sync_now()
    fed.sync_now()
    assert fed.lag == 0
    # quiescent replay is conflict-resolved into a no-op
    assert fed.sync_now() == 0
    for coll in model.colls:
        prefs = fed.router.preference(coll)
        home = subtree(fed.sites[prefs[0]], coll)
        assert home is not None
        for peer in prefs[1:]:
            assert subtree(fed.sites[peer], coll) == home
