"""Tests for the replica manager (publish / replicate / verify)."""

import pytest

from repro.replica import ReplicaError
from repro.scenarios import EsgTestbed

from tests.gridftp.conftest import Grid


def grid_with_manager():
    from repro.replica import ReplicaCatalog, ReplicaManager
    g = Grid(seed=2)
    catalog = ReplicaCatalog(g.env, name="t")
    catalog.create_collection("coll")
    manager = ReplicaManager(g.env, catalog, g.client)
    return g, catalog, manager


def test_publish_server_all_files():
    g, catalog, manager = grid_with_manager()
    for i in range(4):
        g.server_fs.create(f"f{i}.nc", 1000 * (i + 1))
    names = manager.publish_server("coll", "lbl", g.server,
                                   register_sizes=True)
    assert sorted(names) == [f"f{i}.nc" for i in range(4)]
    locs = catalog.locations("coll")
    assert len(locs) == 1
    assert set(locs[0].files) == set(names)
    assert catalog.logical_file_size("coll", "f2.nc") == 3000


def test_publish_server_subset_and_missing():
    g, catalog, manager = grid_with_manager()
    g.server_fs.create("a.nc", 10)
    manager.publish_server("coll", "lbl", g.server, files=["a.nc"])
    with pytest.raises(ReplicaError, match="missing files"):
        manager.publish_server("coll", "lbl2", g.server,
                               files=["a.nc", "ghost.nc"])


def test_coverage_counts():
    g, catalog, manager = grid_with_manager()
    g.server_fs.create("a.nc", 10)
    g.server_fs.create("b.nc", 10)
    manager.publish_server("coll", "l1", g.server)
    catalog.register_location("coll", "l2", "gsiftp", "x.gov", 2811,
                              "/d", files=["a.nc"])
    cov = manager.coverage("coll")
    assert cov == {"a.nc": 2, "b.nc": 1}


def test_verify_location_detects_drift():
    g, catalog, manager = grid_with_manager()
    g.server_fs.create("a.nc", 10)
    g.server_fs.create("b.nc", 10)
    manager.publish_server("coll", "lbl", g.server)
    g.server_fs.delete("b.nc")  # catalog is now stale
    missing = manager.verify_location("coll", "lbl", g.server)
    assert missing == ["b.nc"]
    with pytest.raises(ReplicaError):
        manager.verify_location("coll", "ghost", g.server)


def test_replicate_file_creates_and_extends_location():
    """Third-party replication through the ESG testbed catalogs."""
    tb = EsgTestbed(seed=9, file_size_override=8 * 2**20)
    tb.warm_nws(60.0)
    ds = tb.dataset_ids()[0]
    names = tb.metadata_catalog.resolve(ds, "tas")[:2]
    ncar = tb.sites["ncar"]

    def main():
        s1 = yield from tb.replica_manager.replicate_file(
            tb.client_host, ds, names[0], "ncar-extra", ncar.server)
        s2 = yield from tb.replica_manager.replicate_file(
            tb.client_host, ds, names[1], "ncar-extra", ncar.server)
        return s1, s2

    s1, s2 = tb.run_process(main())
    assert s1.transferred_bytes == pytest.approx(8 * 2**20)
    locs = {l.name: l for l in tb.replica_catalog.locations(ds)}
    assert set(locs["ncar-extra"].files) == set(names)
    assert tb.replica_manager.copies_made == 2
    assert ncar.fs.exists(names[0])


def test_replicate_unknown_file_raises():
    tb = EsgTestbed(seed=9)
    ds = tb.dataset_ids()[0]

    def main():
        with pytest.raises(ReplicaError, match="no replica"):
            yield from tb.replica_manager.replicate_file(
                tb.client_host, ds, "ghost.nc", "x",
                tb.sites["ncar"].server)
        yield tb.env.timeout(0)

    tb.run_process(main())


def test_replicate_without_client_raises():
    from repro.replica import ReplicaCatalog, ReplicaManager
    from repro.sim import Environment
    env = Environment()
    catalog = ReplicaCatalog(env)
    catalog.create_collection("c")
    manager = ReplicaManager(env, catalog, client=None)

    def main():
        with pytest.raises(ReplicaError, match="no GridFTP client"):
            yield from manager.replicate_file(None, "c", "f", "l", None)
        yield env.timeout(0)

    p = env.process(main())
    env.run()
