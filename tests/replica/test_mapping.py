"""Tests for flexible logical→physical mappings (§6.2 future work)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.replica.mapping import MappingRule, MappingTable


def test_literal_rule():
    rule = MappingRule("exact.nc", "gsiftp://h:2811/d/exact.nc")
    assert rule.matches("exact.nc")
    assert not rule.matches("other.nc")
    assert rule.map("exact.nc") == "gsiftp://h:2811/d/exact.nc"
    assert rule.map("other.nc") is None


def test_wildcard_capture_groups():
    rule = MappingRule("pcmdi.*.1998.*.nc",
                       "gsiftp://sprite.llnl.gov:2811/esg/{1}/1998/{2}.nc")
    url = rule.map("pcmdi.ncar_csm.1998.m07.nc")
    assert url == "gsiftp://sprite.llnl.gov:2811/esg/ncar_csm/1998/m07.nc"
    assert rule.map("pcmdi.ncar_csm.1999.m07.nc") is None


def test_name_substitution():
    rule = MappingRule("*.nc", "http://dods.anl.gov/data/{name}")
    assert rule.map("a.nc") == "http://dods.anl.gov/data/a.nc"


def test_rule_validation():
    with pytest.raises(ValueError):
        MappingRule("", "x")
    with pytest.raises(ValueError):
        MappingRule("x", "")


def test_table_first_match_wins():
    table = MappingTable()
    table.add_rule("special.nc", "gsiftp://fast.gov/cache/special.nc")
    table.add_rule("*.nc", "gsiftp://archive.gov/all/{name}")
    assert table.resolve("special.nc") == \
        "gsiftp://fast.gov/cache/special.nc"
    assert table.resolve("other.nc") == \
        "gsiftp://archive.gov/all/other.nc"
    assert table.resolve("nomatch.dat") is None
    assert len(table) == 2


def test_table_resolve_all_gives_every_replica():
    table = MappingTable()
    table.add_rule("*.nc", "gsiftp://a.gov/d/{name}")
    table.add_rule("*.nc", "gsiftp://b.gov/d/{name}")
    table.add_rule("*.nc", "gsiftp://a.gov/d/{name}")  # duplicate URL
    urls = table.resolve_all("x.nc")
    assert urls == ["gsiftp://a.gov/d/x.nc", "gsiftp://b.gov/d/x.nc"]


def test_pattern_location_replaces_enumeration():
    """One rule covers what a filename-enumerating location needed
    thousands of entries for."""
    table = MappingTable()
    table.add_rule("pcmdi.*.nc", "gsiftp://sprite.llnl.gov:2811/esg/{1}.nc")
    names = [f"pcmdi.run{i}.{y}.m{m:02d}.nc"
             for i in range(3) for y in (1998, 1999)
             for m in range(1, 13)]
    resolved = [table.resolve(n) for n in names]
    assert all(r is not None for r in resolved)
    assert len(set(resolved)) == len(names)
    assert len(table) == 1


@given(st.text(alphabet="abc.", min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_property_star_matches_everything(name):
    rule = MappingRule("*", "x/{name}")
    assert rule.map(name) == f"x/{name}"


@given(st.text(alphabet="ab", min_size=0, max_size=8),
       st.text(alphabet="ab", min_size=0, max_size=8))
@settings(max_examples=60, deadline=None)
def test_property_prefix_suffix_pattern(prefix, suffix):
    rule = MappingRule(f"{prefix}*{suffix}", "{1}")
    middle = "XYZ"
    name = prefix + middle + suffix
    mapped = rule.map(name)
    assert mapped is not None
    # Lazy capture: the group plus pattern context reassembles the name.
    assert prefix + mapped + suffix == prefix + middle + suffix or \
        rule.matches(name)
