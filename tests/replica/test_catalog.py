"""Tests for the replica catalog, including the paper's Figure 6 example."""

import pytest

from repro.replica import (
    LocationInfo,
    NwsBestPolicy,
    RandomPolicy,
    ReplicaCandidate,
    ReplicaCatalog,
    ReplicaError,
    RoundRobinPolicy,
)
from repro.sim import Environment


def figure6_catalog(env=None):
    """The exact catalog of the paper's Figure 6: two CO2 collections;
    the 1998 one has a partial copy at jupiter.isi.edu and a complete one
    at sprite.llnl.gov."""
    env = env or Environment()
    rc = ReplicaCatalog(env, name="climate")
    files_98 = [f"ua.1998.{m:02d}.nc" for m in range(1, 13)]
    rc.create_collection("CO2 measurements 1998",
                         description="CO2 collection for 1998")
    rc.create_collection("CO2 measurements 1999",
                         description="CO2 collection for 1999")
    rc.register_location("CO2 measurements 1998", "jupiter.isi.edu",
                         protocol="gsiftp", hostname="jupiter.isi.edu",
                         port=2811, path="/nfs/v6/climate",
                         files=files_98[:6])        # partial copy
    rc.register_location("CO2 measurements 1998", "sprite.llnl.gov",
                         protocol="gsiftp", hostname="sprite.llnl.gov",
                         port=2811, path="/data/climate",
                         files=files_98)            # complete copy
    for f in files_98:
        rc.register_logical_file("CO2 measurements 1998", f, 1_234_567)
    return env, rc, files_98


def test_collections_listing():
    env, rc, files = figure6_catalog()
    colls = {c.name: c for c in rc.collections()}
    assert set(colls) == {"CO2 measurements 1998", "CO2 measurements 1999"}
    c98 = colls["CO2 measurements 1998"]
    assert c98.location_count == 2
    assert c98.file_count == 12


def test_locations_and_urls():
    env, rc, files = figure6_catalog()
    locs = {l.name: l for l in rc.locations("CO2 measurements 1998")}
    jupiter = locs["jupiter.isi.edu"]
    sprite = locs["sprite.llnl.gov"]
    assert len(jupiter.files) == 6        # partial
    assert len(sprite.files) == 12        # complete
    assert jupiter.url_for("ua.1998.01.nc") == \
        "gsiftp://jupiter.isi.edu:2811/nfs/v6/climate/ua.1998.01.nc"
    with pytest.raises(ReplicaError):
        jupiter.url_for("ua.1998.12.nc")  # not in the partial copy


def test_find_replicas_partial_vs_complete():
    env, rc, files = figure6_catalog()

    def main():
        early = yield from rc.find_replicas("CO2 measurements 1998",
                                            "ua.1998.03.nc")
        late = yield from rc.find_replicas("CO2 measurements 1998",
                                           "ua.1998.11.nc")
        return ({l.name for l in early}, {l.name for l in late})

    p = env.process(main())
    env.run()
    early, late = p.value
    assert early == {"jupiter.isi.edu", "sprite.llnl.gov"}
    assert late == {"sprite.llnl.gov"}   # only the complete copy


def test_find_replicas_costs_ldap_time():
    env, rc, files = figure6_catalog()

    def main():
        yield from rc.find_replicas("CO2 measurements 1998",
                                    "ua.1998.01.nc")
        return env.now

    p = env.process(main())
    env.run()
    assert p.value > 0


def test_logical_file_entries_optional():
    env, rc, files = figure6_catalog()
    assert rc.logical_file_size("CO2 measurements 1998",
                                "ua.1998.01.nc") == 1_234_567
    # 1999 collection has no logical file entries.
    rc.register_location("CO2 measurements 1999", "sprite.llnl.gov",
                         "gsiftp", "sprite.llnl.gov", 2811, "/data",
                         files=["ua.1999.01.nc"])
    assert rc.logical_file_size("CO2 measurements 1999",
                                "ua.1999.01.nc") is None


def test_duplicate_registrations_rejected():
    env, rc, files = figure6_catalog()
    with pytest.raises(ReplicaError):
        rc.create_collection("CO2 measurements 1998")
    with pytest.raises(ReplicaError):
        rc.register_location("CO2 measurements 1998", "jupiter.isi.edu",
                             "gsiftp", "x", 2811, "/", files=[])
    with pytest.raises(ReplicaError):
        rc.register_logical_file("CO2 measurements 1998",
                                 "ua.1998.01.nc", 1)


def test_unknown_collection_rejected():
    env, rc, files = figure6_catalog()
    with pytest.raises(ReplicaError):
        rc.locations("nope")
    with pytest.raises(ReplicaError):
        rc.register_location("nope", "l", "gsiftp", "h", 1, "/", [])


def test_add_remove_file_at_location():
    env, rc, files = figure6_catalog()
    rc.add_file_to_location("CO2 measurements 1998", "jupiter.isi.edu",
                            "ua.1998.07.nc")
    locs = {l.name: l for l in rc.locations("CO2 measurements 1998")}
    assert "ua.1998.07.nc" in locs["jupiter.isi.edu"].files
    rc.remove_file_from_location("CO2 measurements 1998",
                                 "jupiter.isi.edu", "ua.1998.07.nc")
    locs = {l.name: l for l in rc.locations("CO2 measurements 1998")}
    assert "ua.1998.07.nc" not in locs["jupiter.isi.edu"].files


def test_delete_location():
    env, rc, files = figure6_catalog()
    rc.delete_location("CO2 measurements 1998", "jupiter.isi.edu")
    assert len(rc.locations("CO2 measurements 1998")) == 1


def test_scalability_without_logical_files():
    """The optional-logical-file design: catalog size stays flat."""
    env = Environment()
    rc = ReplicaCatalog(env, name="big")
    rc.create_collection("huge")
    files = [f"f{i}.nc" for i in range(500)]
    rc.register_location("huge", "site-a", "gsiftp", "a.gov", 2811,
                         "/d", files=files)
    lean_entries = len(rc.directory)
    for f in files:
        rc.register_logical_file("huge", f, 1000)
    assert len(rc.directory) == lean_entries + 500


# -- selection policies ------------------------------------------------------

def candidates():
    def loc(name):
        return LocationInfo(name, "gsiftp", name, 2811, "/", ("f",))
    return [
        ReplicaCandidate(loc("slow.gov"), bandwidth=1e6, latency=0.05),
        ReplicaCandidate(loc("fast.gov"), bandwidth=1e8, latency=0.01),
        ReplicaCandidate(loc("tape.gov"), bandwidth=5e7, latency=0.02,
                         stage_wait=120.0),
    ]


def test_nws_best_picks_highest_bandwidth():
    ranked = NwsBestPolicy().rank(candidates(), nbytes=1e9)
    assert ranked[0].location.name == "fast.gov"


def test_nws_best_with_staging_penalizes_tape():
    # For a small file, staging dominates; for a huge file, bandwidth does.
    small = NwsBestPolicy(consider_staging=True).rank(candidates(), 1e6)
    assert small[0].location.name == "fast.gov"
    assert small[-1].location.name == "tape.gov"
    huge = NwsBestPolicy(consider_staging=True).rank(candidates(), 1e12)
    assert huge[0].location.name == "fast.gov"
    # slow.gov at 1 MB/s takes ~11.6 days for 1 TB; tape wins despite wait.
    assert huge[1].location.name == "tape.gov"


def test_round_robin_rotates():
    policy = RoundRobinPolicy()
    first = policy.rank(candidates(), 1)[0].location.name
    second = policy.rank(candidates(), 1)[0].location.name
    third = policy.rank(candidates(), 1)[0].location.name
    fourth = policy.rank(candidates(), 1)[0].location.name
    assert len({first, second, third}) == 3
    assert fourth == first


def test_random_policy_is_seeded():
    import numpy as np
    a = RandomPolicy(np.random.default_rng(1)).rank(candidates(), 1)
    b = RandomPolicy(np.random.default_rng(1)).rank(candidates(), 1)
    assert [c.location.name for c in a] == [c.location.name for c in b]


def test_transfer_estimate():
    c = ReplicaCandidate(
        LocationInfo("x", "gsiftp", "x", 2811, "/", ("f",)),
        bandwidth=1e6, latency=0.5, stage_wait=10.0)
    assert c.transfer_estimate(2e6) == pytest.approx(10.0 + 0.5 + 2.0)


def test_spread_policy_rotates_among_near_best():
    from repro.replica import NwsSpreadPolicy

    def loc(name):
        return LocationInfo(name, "gsiftp", name, 2811, "/", ("f",))

    cands = [
        ReplicaCandidate(loc("site-a"), bandwidth=1e8, latency=0.01),
        ReplicaCandidate(loc("site-b"), bandwidth=0.9e8, latency=0.01),
        ReplicaCandidate(loc("slow.gov"), bandwidth=1e6, latency=0.05),
    ]
    policy = NwsSpreadPolicy(tolerance=0.5)
    firsts = [policy.rank(cands, nbytes=1e9)[0].location.name
              for _ in range(4)]
    # a and b are within tolerance of each other: rotation spreads load;
    # the slow site never leads.
    assert set(firsts) == {"site-a", "site-b"}
    # The slow site is always last.
    assert policy.rank(cands, 1e9)[-1].location.name == "slow.gov"


def test_spread_policy_validation_and_empty():
    from repro.replica import NwsSpreadPolicy
    import pytest as _pytest
    with _pytest.raises(ValueError):
        NwsSpreadPolicy(tolerance=-1)
    assert NwsSpreadPolicy().rank([], 1) == []
