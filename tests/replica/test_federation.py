"""Directed tests for the federated replica catalog.

Covers the behaviours the property suite can't pin down one by one:
the verify-on-open demotion loop end-to-end through the testbed, shard
outages degrading fan-out queries to partial answers (with the circuit
breaker opening and recovering), the stale client cache, and the
facade's conformance to the plain :class:`ReplicaCatalog` surface.
"""

import pytest

from repro.ldap.directory import DirectoryUnavailable
from repro.net.faults import FaultSchedule
from repro.replica.catalog import ReplicaCatalog, ReplicaError
from repro.replica.federation import FederatedReplicaCatalog
from repro.rm.request import FileState
from repro.scenarios.esg import EsgTestbed
from repro.sim import Environment

MB = 2**20
SITES = ["anl", "ncar", "isi"]


def publish(fed, coll="pcmdi.test.run1", files=("jan.nc", "feb.nc"),
            locations=("alpha", "beta")):
    fed.create_collection(coll, description="directed")
    for loc in locations:
        fed.register_location(coll, loc, "gsiftp",
                              f"{loc}.example.org", 2811, "/data",
                              files)
    fed.sync_now()
    return coll


def lookup(env, fed, coll, name):
    proc = env.process(fed.find_replicas_meta(coll, name))
    env.run(until=proc)
    return proc.value


# -- the demotion loop, end-to-end through the testbed -------------------

def test_verify_on_open_demotes_and_reselects():
    """A catalog entry that outlived its replica must not fail the
    request: the open mismatch demotes the entry (``catalog.demote``
    on the lifeline), selection falls through to a live copy, and the
    demoted entries stay hidden until the collection is refreshed."""
    tb = EsgTestbed(seed=3, with_tape=False,
                    file_size_override=2 * MB, catalog_sites=3,
                    catalog_sync_interval=600.0)
    tb.warm_nws(60.0)
    fed = tb.federation
    ds = tb.dataset_ids()[0]
    name = str(tb.datasets[ds][0]["logical_name"])
    holders = [loc.name for loc in fed.locations(ds)
               if loc.holds(name)]
    assert len(holders) >= 3
    # Keep the copy at the slowest site (155 Mb/s WAN) so NWS-ranked
    # selection tries the doctored fast replicas first.
    slow = {"ncar", "isi", "sdsc", "llnl"}
    survivor = next(h for h in holders if h in slow)
    doctored = [h for h in holders if h != survivor]
    for site_name in doctored:
        tb.sites[site_name].fs.delete(name)

    ticket = tb.request_manager.submit([(ds, name)])
    tb.env.run(until=ticket.done)
    fr = ticket.files[0]
    assert fr.state is FileState.DONE
    assert fr.chosen_location == survivor
    # Every doctored replica the RM tried got demoted (ranked first,
    # so at least one was tried before the survivor won).
    events = [r for r in tb.logger.records
              if r.event == "catalog.demote"]
    demoted = {e.fields["location"] for e in events}
    assert demoted and demoted <= set(doctored)
    assert fr.stale_demotes == len(demoted)
    assert fed.demotes == len(demoted)
    # Demoted entries are hidden from subsequent lookups...
    replicas, _meta = lookup(tb.env, fed, ds, name)
    assert set(loc.name for loc in replicas) == \
        set(holders) - demoted
    for site_name in demoted:
        assert fed.is_demoted(ds, name, site_name)
    # ...and from campaign planning.
    from repro.campaign import plan_campaign
    _manifest, planned = plan_campaign(fed, [ds])
    assert set(loc.name for loc in planned[(ds, name)]) == \
        set(holders) - demoted
    # A home write refreshes the collection: entries are re-offered.
    fed.add_file_to_location(ds, survivor, f"{name}.refreshed")
    for site_name in demoted:
        assert not fed.is_demoted(ds, name, site_name)
    assert fed.refreshes == len(demoted)
    replicas, _meta = lookup(tb.env, fed, ds, name)
    assert set(loc.name for loc in replicas) == set(holders)


def test_demoted_entries_not_reoffered_until_refresh():
    env = Environment(seed=1)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=10.0)
    coll = publish(fed)
    fed.demote(coll, "jan.nc", "alpha")
    replicas, _ = lookup(env, fed, coll, "jan.nc")
    assert [loc.name for loc in replicas] == ["beta"]
    fed.demote(coll, "jan.nc", "beta")
    replicas, _ = lookup(env, fed, coll, "jan.nc")
    assert replicas == []
    # other files at the same locations are unaffected
    replicas, _ = lookup(env, fed, coll, "feb.nc")
    assert [loc.name for loc in replicas] == ["alpha", "beta"]
    fed.register_logical_file(coll, "mar.nc", 1.0)   # any home write
    replicas, _ = lookup(env, fed, coll, "jan.nc")
    assert [loc.name for loc in replicas] == ["alpha", "beta"]
    assert fed.refreshes == 2


# -- shard outages: partial answers, staleness, breaker recovery ---------

def test_home_outage_degrades_to_partial_answer():
    env = Environment(seed=2)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=10.0,
                                  breaker_reset_timeout=30.0)
    coll = publish(fed)
    home = fed.router.home(coll)
    peer = fed.router.preference(coll)[1]
    fed.sites[home].directory.add_outage(start=env.now,
                                         duration=100.0)
    replicas, meta = lookup(env, fed, coll, "jan.nc")
    assert [loc.name for loc in replicas] == ["alpha", "beta"]
    assert meta.partial
    assert meta.winner == peer
    assert fed.stats()["partial_queries"] == 1


def test_write_during_home_outage_flags_stale():
    env = Environment(seed=2)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=1e6)
    coll = publish(fed)
    home = fed.router.home(coll)
    fed.sites[home].directory.add_outage(start=env.now,
                                         duration=100.0)
    # Registration still lands at the home (setup-plane writes ignore
    # outage windows), but with the pump quiesced the peer lags; the
    # home being down forces the fan-out onto the lagging peer.
    fed.add_file_to_location(coll, "alpha", "mar.nc")
    assert fed.lag > 0                  # pending for the peer
    replicas, meta = lookup(env, fed, coll, "mar.nc")
    assert meta.partial and meta.stale
    assert replicas == []               # the peer hasn't seen mar.nc
    assert fed.stats()["stale_hits"] == 1
    # jan.nc is unaffected: present everywhere, just version-lagged
    replicas, meta = lookup(env, fed, coll, "jan.nc")
    assert [loc.name for loc in replicas] == ["alpha", "beta"]
    assert meta.stale


def test_breaker_opens_on_repeated_shard_failures_then_recovers():
    env = Environment(seed=4)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=10.0,
                                  breaker_failure_threshold=2,
                                  breaker_reset_timeout=20.0)
    coll = publish(fed)
    home = fed.router.home(coll)
    fed.sites[home].directory.add_outage(start=env.now, duration=50.0)
    for _ in range(2):
        _replicas, meta = lookup(env, fed, coll, "jan.nc")
        assert meta.partial
    assert fed.stats()["breakers"][home] == "open"
    # While open, the shard isn't even queried (skipped, still partial).
    _replicas, meta = lookup(env, fed, coll, "jan.nc")
    assert meta.partial and meta.queried == 1
    # After the outage and the reset timeout, one probe heals it.
    env.run(until=80.0)
    _replicas, meta = lookup(env, fed, coll, "jan.nc")
    assert not meta.partial
    assert fed.stats()["breakers"][home] == "closed"


def test_all_preference_shards_down_raises_unavailable():
    env = Environment(seed=5)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=10.0)
    coll = publish(fed)
    for site in fed.router.preference(coll):
        fed.sites[site].directory.add_outage(start=env.now,
                                             duration=100.0)
    proc = env.process(fed.find_replicas(coll, "jan.nc"))
    with pytest.raises(DirectoryUnavailable):
        env.run(until=proc)


def test_unknown_collection_raises_replica_error():
    env = Environment(seed=5)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=10.0)
    publish(fed)
    proc = env.process(fed.find_replicas("nope", "jan.nc"))
    with pytest.raises(ReplicaError):
        env.run(until=proc)


def test_testbed_shard_outage_via_fault_schedule():
    """The fault injector's ``catalog:<site>`` target reaches one
    federation shard; queries during the window degrade to partial."""
    tb = EsgTestbed(seed=6, with_tape=False,
                    file_size_override=2 * MB, catalog_sites=3,
                    catalog_sync_interval=15.0)
    shard = sorted(tb.federation.sites)[0]
    sched = FaultSchedule().catalog_outage(10.0, 60.0, site=shard,
                                           description="shard down")
    tb.fault_injector().install(sched)
    tb.env.run(until=20.0)
    ds = tb.dataset_ids()[0]
    name = str(tb.datasets[ds][0]["logical_name"])
    hit = False
    for coll in [c.name for c in tb.federation.collections()]:
        if shard not in tb.federation.router.preference(coll):
            continue
        lf = (name if coll == ds
              else str(tb.datasets[coll][0]["logical_name"]))
        _replicas, meta = lookup(tb.env, tb.federation, coll, lf)
        assert meta.partial
        hit = True
    assert hit


# -- the client-side lookup cache ----------------------------------------

def test_cache_hit_is_free_and_expires():
    env = Environment(seed=7)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=10.0, cache_ttl=60.0)
    coll = publish(fed)
    replicas, meta = lookup(env, fed, coll, "jan.nc")
    assert meta.queried > 0
    t_after_miss = env.now
    assert t_after_miss > 0.0           # the fan-out cost time
    cached, meta = lookup(env, fed, coll, "jan.nc")
    assert env.now == t_after_miss      # the hit cost none
    assert meta.queried == 0 and meta.winner == "cache"
    assert [loc.name for loc in cached] == \
        [loc.name for loc in replicas]
    assert fed.cache_hits == 1
    env.run(until=t_after_miss + 61.0)  # past the TTL
    _replicas, meta = lookup(env, fed, coll, "jan.nc")
    assert meta.queried > 0
    assert fed.cache_hits == 1


def test_write_invalidates_cache():
    env = Environment(seed=7)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=10.0, cache_ttl=1e6)
    coll = publish(fed)
    lookup(env, fed, coll, "jan.nc")
    fed.add_file_to_location(coll, "alpha", "mar.nc")
    replicas, meta = lookup(env, fed, coll, "jan.nc")
    assert meta.queried > 0             # cache was invalidated
    assert fed.cache_hits == 0
    assert meta.version == fed.version(coll)


# -- facade conformance ---------------------------------------------------

def test_facade_matches_plain_catalog_surface():
    env = Environment(seed=8)
    fed = FederatedReplicaCatalog(env, SITES, replication=2,
                                  sync_interval=10.0)
    plain = ReplicaCatalog(env, name="esg")
    for cat in (fed, plain):
        cat.create_collection("pcmdi.x.run1", description="d")
        cat.register_location("pcmdi.x.run1", "alpha", "gsiftp",
                              "a.example.org", 2811, "/data",
                              ["jan.nc"])
        cat.register_logical_file("pcmdi.x.run1", "jan.nc", 512.0,
                                  attributes={"digest": "sha:beef"})
    fed.sync_now()
    assert [(c.name, c.description, c.file_count, c.location_count)
            for c in fed.collections()] == \
        [(c.name, c.description, c.file_count, c.location_count)
         for c in plain.collections()]
    assert [loc.name for loc in fed.locations("pcmdi.x.run1")] == \
        [loc.name for loc in plain.locations("pcmdi.x.run1")]
    assert fed.logical_file_size("pcmdi.x.run1", "jan.nc") == 512.0
    assert fed.logical_file_digest("pcmdi.x.run1", "jan.nc") == \
        "sha:beef"
    assert fed.shard_map() == {
        "pcmdi.x.run1": fed.router.preference("pcmdi.x.run1")}
    stats = fed.stats()
    assert set(SITES) == set(stats["sites"]) == set(stats["breakers"])
    assert "FederatedReplicaCatalog" in repr(fed)


def test_conflicting_catalog_architectures_rejected():
    with pytest.raises(ValueError):
        EsgTestbed(seed=0, replicated_catalog=True, catalog_sites=2)
    with pytest.raises(ValueError):
        EsgTestbed(seed=0, catalog_sites=99)
