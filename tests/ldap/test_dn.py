"""Tests for distinguished names."""

import pytest

from repro.ldap import DN, DnError


def test_parse_and_str_roundtrip():
    dn = DN.parse("lc=CO2 1998, rc=esg, o=globus")
    assert str(dn) == "lc=CO2 1998,rc=esg,o=globus"
    assert len(dn) == 3


def test_case_insensitive_attrs_and_values():
    assert DN.parse("LC=Alpha,O=Globus") == DN.parse("lc=alpha,o=globus")
    assert hash(DN.parse("LC=A,O=B")) == hash(DN.parse("lc=a,o=b"))


def test_whitespace_normalized():
    assert DN.parse(" a = x , b = y ") == DN.parse("a=x,b=y")


def test_parse_errors():
    for bad in ["", "  ", "noequals", "a=,b=c", "=v", "a=b,,c=d"]:
        with pytest.raises(DnError):
            DN.parse(bad)


def test_value_with_special_chars_rejected():
    with pytest.raises(DnError):
        DN([("a", "x=y")])


def test_parent_chain():
    dn = DN.parse("a=1,b=2,c=3")
    assert str(dn.parent) == "b=2,c=3"
    assert str(dn.parent.parent) == "c=3"
    assert dn.parent.parent.parent is None


def test_rdn():
    assert DN.parse("a=1,b=2").rdn == ("a", "1")


def test_child():
    base = DN.parse("rc=esg")
    assert str(base.child("lc", "CO2 1998")) == "lc=CO2 1998,rc=esg"


def test_is_under():
    root = DN.parse("o=globus")
    coll = DN.parse("lc=x,o=globus")
    file_ = DN.parse("lf=f,lc=x,o=globus")
    assert coll.is_under(root)
    assert file_.is_under(root)
    assert file_.is_under(coll)
    assert not root.is_under(coll)
    assert not coll.is_under(coll)  # proper ancestor only


def test_depth_below():
    root = DN.parse("o=globus")
    file_ = DN.parse("lf=f,lc=x,o=globus")
    assert file_.depth_below(root) == 2
    assert root.depth_below(root) == 0
    with pytest.raises(DnError):
        root.depth_below(file_)


def test_of_coercion():
    dn = DN.parse("a=1")
    assert DN.of(dn) is dn
    assert DN.of("a=1") == dn
    with pytest.raises(DnError):
        DN.of(42)
