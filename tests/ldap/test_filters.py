"""Tests for RFC 2254-style filter parsing and evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ldap import FilterError, parse_filter

ENTRY = {
    "objectclass": ["collection"],
    "model": ["NCAR_CSM"],
    "variable": ["tas", "pr"],
    "year": ["1998"],
    "size": ["2048"],
}


def matches(expr, attrs=ENTRY):
    return parse_filter(expr)(attrs)


def test_equality_case_insensitive():
    assert matches("(model=ncar_csm)")
    assert matches("(MODEL=NCAR_CSM)")
    assert not matches("(model=other)")


def test_multivalued_equality():
    assert matches("(variable=pr)")
    assert matches("(variable=tas)")
    assert not matches("(variable=slp)")


def test_presence():
    assert matches("(year=*)")
    assert not matches("(missing=*)")


def test_substring_wildcards():
    assert matches("(model=NCAR*)")
    assert matches("(model=*CSM)")
    assert matches("(model=N*_*M)")
    assert not matches("(model=*GFDL*)")


def test_ordering_numeric():
    assert matches("(size>=1000)")
    assert matches("(size<=4096)")
    assert not matches("(size>=1000000)")


def test_ordering_lexicographic_fallback():
    assert matches("(model>=M)")
    assert not matches("(model>=Z)")


def test_and_or_not():
    assert matches("(&(model=NCAR_CSM)(year=1998))")
    assert not matches("(&(model=NCAR_CSM)(year=1999))")
    assert matches("(|(year=1999)(year=1998))")
    assert matches("(!(year=1999))")
    assert matches("(&(|(variable=tas)(variable=slp))(!(model=GFDL)))")


def test_nested_depth():
    expr = "(&(&(&(objectclass=collection)(year=*))(size>=1))(model=N*))"
    assert matches(expr)


def test_missing_attribute_is_false():
    assert not matches("(ghost=1)")
    assert not matches("(ghost>=1)")


def test_parse_errors():
    for bad in ["", "model=x", "(model=x", "(&)", "(model=)",
                "(model=x)(y=z)", "((model=x))", "(>=x)", "(!)"]:
        with pytest.raises(FilterError):
            parse_filter(bad)


def test_attr_with_dots_and_dashes():
    attrs = {"x-file.size": ["9"]}
    assert parse_filter("(x-file.size=9)")(attrs)


@given(st.text(alphabet="abcdef", min_size=1, max_size=8))
@settings(max_examples=50, deadline=None)
def test_property_equality_matches_itself(value):
    pred = parse_filter(f"(attr={value})")
    assert pred({"attr": [value]})
    assert not pred({"attr": [value + "x"]})


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=0, max_size=4))
@settings(max_examples=50, deadline=None)
def test_property_not_is_complement(values):
    attrs = {"attr": values}
    pos = parse_filter("(attr=a)")(attrs)
    neg = parse_filter("(!(attr=a))")(attrs)
    assert pos != neg
