"""Tests for the replicated directory (§6.2 future work)."""

import pytest

from repro.ldap import DirectoryError, DirectoryServer, Scope
from repro.ldap.replicated import ReplicatedDirectory
from repro.sim import Environment


def build(sync_interval=10.0, n_replicas=2):
    env = Environment()
    primary = DirectoryServer(env, "primary", base_latency=0.010)
    replicas = [DirectoryServer(env, f"replica{i}",
                                base_latency=0.002 + i * 0.001)
                for i in range(n_replicas)]
    rd = ReplicatedDirectory(env, primary, replicas,
                             sync_interval=sync_interval)
    return env, primary, replicas, rd


def test_writes_go_to_primary_and_lag_until_sync():
    env, primary, replicas, rd = build()
    rd.add("o=esg", {"objectclass": "org"})
    rd.add("lc=coll,o=esg", {"objectclass": "collection"})
    assert primary.exists("lc=coll,o=esg")
    assert not replicas[0].exists("lc=coll,o=esg")
    assert rd.lag == 2
    rd.sync_now()
    assert rd.lag == 0
    for r in replicas:
        assert r.exists("lc=coll,o=esg")


def test_periodic_sync_process():
    env, primary, replicas, rd = build(sync_interval=10.0)
    rd.start()
    rd.start()  # idempotent
    rd.add("o=esg", {"objectclass": "org"})
    env.run(until=5.0)
    assert not replicas[0].exists("o=esg")  # still stale
    env.run(until=11.0)
    assert replicas[0].exists("o=esg")
    assert rd.syncs >= 1


def test_modify_and_delete_replicate():
    env, primary, replicas, rd = build()
    rd.add("o=esg", {"objectclass": "org", "v": "1"})
    rd.sync_now()
    rd.modify("o=esg", replace={"v": "2"})
    rd.add("cn=x,o=esg", {"objectclass": "leaf"})
    rd.delete("cn=x,o=esg")
    rd.sync_now()
    for r in replicas:
        assert r.lookup("o=esg").first("v") == "2"
        assert not r.exists("cn=x,o=esg")


def test_reads_prefer_lowest_latency_healthy_server():
    env, primary, replicas, rd = build()
    rd.add("o=esg", {"objectclass": "org"})
    rd.sync_now()
    # replica0 has the lowest base_latency.
    assert rd._read_server() is replicas[0]
    entry = rd.lookup("o=esg")
    assert entry.first("objectclass") == "org"


def test_failover_to_replica_when_primary_down():
    env, primary, replicas, rd = build()
    down = set()
    rd.health = lambda server: server not in down
    rd.add("o=esg", {"objectclass": "org"})
    rd.sync_now()
    down.add(primary)
    down.add(replicas[0])
    # Reads still served (by replica1).
    assert rd.exists("o=esg")
    assert rd._read_server() is replicas[1]
    # Writes blocked: single-master semantics.
    with pytest.raises(DirectoryError, match="primary"):
        rd.add("cn=y,o=esg", {})
    with pytest.raises(DirectoryError, match="primary"):
        rd.modify("o=esg", replace={"v": "9"})
    with pytest.raises(DirectoryError, match="primary"):
        rd.delete("o=esg")


def test_all_servers_down():
    env, primary, replicas, rd = build()
    rd.health = lambda server: False
    with pytest.raises(DirectoryError, match="no healthy"):
        rd.lookup("o=esg")


def test_stale_reads_between_syncs():
    """The fundamental replication trade-off is observable."""
    env, primary, replicas, rd = build()
    rd.add("o=esg", {"objectclass": "org", "version": "1"})
    rd.sync_now()
    rd.modify("o=esg", replace={"version": "2"})
    # Best read server is a replica → stale value until the next sync.
    assert rd.lookup("o=esg").first("version") == "1"
    rd.sync_now()
    assert rd.lookup("o=esg").first("version") == "2"


def test_timed_query_uses_fast_replica():
    env, primary, replicas, rd = build()
    rd.add("o=esg", {"objectclass": "org"})
    rd.sync_now()

    def main():
        hits = yield from rd.query("o=esg", Scope.BASE)
        return env.now, hits

    p = env.process(main())
    env.run(until=p)
    t, hits = p.value
    assert len(hits) == 1
    assert t < primary.base_latency  # served by the faster replica


def test_replay_tolerates_converged_replicas():
    env, primary, replicas, rd = build()
    rd.add("o=esg", {"objectclass": "org"})
    # Replica already has the entry (e.g. seeded out of band).
    replicas[0].add("o=esg", {"objectclass": "org"})
    rd.sync_now()  # must not raise
    assert replicas[1].exists("o=esg")


def test_sync_interval_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ReplicatedDirectory(env, DirectoryServer(env), sync_interval=0)
