"""Tests for the directory server."""

import pytest

from repro.ldap import DirectoryError, DirectoryServer, Scope
from repro.sim import Environment


def server():
    env = Environment()
    d = DirectoryServer(env, "test", base_latency=0.005, scan_cost=1e-6)
    d.add("o=esg", {"objectclass": "organization"})
    d.add("lc=CO2 1998,o=esg", {"objectclass": "collection",
                                "year": "1998"})
    d.add("lc=CO2 1999,o=esg", {"objectclass": "collection",
                                "year": "1999"})
    d.add("lf=jan.nc,lc=CO2 1998,o=esg",
          {"objectclass": "logicalfile", "size": "2048"})
    d.add("lf=feb.nc,lc=CO2 1998,o=esg",
          {"objectclass": "logicalfile", "size": "4096"})
    return env, d


def test_add_lookup():
    env, d = server()
    e = d.lookup("lc=CO2 1998,o=esg")
    assert e.first("year") == "1998"
    assert len(d) == 5


def test_add_duplicate_rejected():
    env, d = server()
    with pytest.raises(DirectoryError):
        d.add("o=esg", {})


def test_add_orphan_rejected():
    env, d = server()
    with pytest.raises(DirectoryError):
        d.add("lf=x,lc=ghost,o=esg", {})


def test_lookup_missing():
    env, d = server()
    with pytest.raises(DirectoryError):
        d.lookup("o=nowhere")
    assert not d.exists("o=nowhere")


def test_children_sorted():
    env, d = server()
    kids = d.children("lc=CO2 1998,o=esg")
    assert [e.dn.rdn[1] for e in kids] == ["feb.nc", "jan.nc"]


def test_scopes():
    env, d = server()
    base = d.search("o=esg", Scope.BASE)
    assert len(base) == 1
    one = d.search("o=esg", Scope.ONELEVEL)
    assert {e.dn.rdn[1] for e in one} == {"CO2 1998", "CO2 1999"}
    sub = d.search("o=esg", Scope.SUBTREE)
    assert len(sub) == 5


def test_search_with_filter():
    env, d = server()
    hits = d.search("o=esg", Scope.SUBTREE, "(objectclass=logicalfile)")
    assert len(hits) == 2
    big = d.search("o=esg", Scope.SUBTREE,
                   "(&(objectclass=logicalfile)(size>=3000))")
    assert [e.dn.rdn[1] for e in big] == ["feb.nc"]


def test_search_missing_base():
    env, d = server()
    with pytest.raises(DirectoryError):
        d.search("o=ghost")


def test_modify_replace_add_delete():
    env, d = server()
    dn = "lc=CO2 1998,o=esg"
    d.modify(dn, replace={"year": "2000"})
    assert d.lookup(dn).first("year") == "2000"
    d.modify(dn, add_values={"location": ["lbnl", "anl"]})
    d.modify(dn, add_values={"location": "lbnl"})  # dedup
    assert d.lookup(dn).get("location") == ["lbnl", "anl"]
    d.modify(dn, delete_attrs=["location"])
    assert d.lookup(dn).get("location") == []


def test_delete_leaf_and_refuse_nonleaf():
    env, d = server()
    with pytest.raises(DirectoryError):
        d.delete("lc=CO2 1998,o=esg")
    d.delete("lf=jan.nc,lc=CO2 1998,o=esg")
    assert len(d) == 4


def test_delete_recursive():
    env, d = server()
    d.delete("lc=CO2 1998,o=esg", recursive=True)
    assert len(d) == 2
    assert not d.exists("lf=jan.nc,lc=CO2 1998,o=esg")


def test_timed_query_costs_latency_plus_scan():
    env, d = server()

    def main(env, d):
        hits = yield from d.query("o=esg", Scope.SUBTREE,
                                  "(objectclass=collection)")
        return (env.now, len(hits))

    p = env.process(main(env, d))
    env.run()
    t, n = p.value
    assert n == 2
    assert t == pytest.approx(0.005 + 5e-6)
    assert d.operations == 1
    assert d.entries_scanned == 5


def test_timed_read():
    env, d = server()

    def main(env, d):
        e = yield from d.read("o=esg")
        return (env.now, e.first("objectclass"))

    p = env.process(main(env, d))
    env.run()
    assert p.value == (0.005, "organization")


def test_entry_attribute_normalization():
    env, d = server()
    d.add("cn=x,o=esg", {"Single": "v", "Multi": ["a", "b"], "Num": 7})
    e = d.lookup("cn=x,o=esg")
    assert e.get("single") == ["v"]
    assert e.get("multi") == ["a", "b"]
    assert e.get("num") == ["7"]
    assert e.first("nothing", "dflt") == "dflt"
